//! # qsbr — quiescent-state-based reclamation
//!
//! The paper's fast-but-blocking baseline (§3.1) and the fast path inside QSense.
//!
//! QSBR is an epoch scheme: a global epoch counter, a local epoch per thread, and
//! three *limbo lists* per thread (one per logical epoch, indexed modulo 3). A thread
//! declares a *quiescent state* — a point where it holds no references to shared
//! nodes — once every `Q` operations (the quiescence threshold). At a quiescent
//! state the thread either adopts the global epoch (freeing the limbo list it is
//! about to reuse, safe by Lemma 3 of the paper) or, if every registered thread has
//! already adopted the current epoch, advances the global epoch.
//!
//! The strength of QSBR is its hot path: traversals pay **nothing** — no fences, no
//! per-node stores. Its weakness, which the paper's Figure 5 (bottom) demonstrates
//! and this crate reproduces in its tests, is that a single delayed thread stops the
//! epoch from advancing, so every thread's limbo lists grow without bound.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod epoch;
mod scheme;

pub use epoch::{limbo_index, CursorCheck, EpochCursor, EpochRecord, GlobalEpoch, EPOCH_BUCKETS};
pub use scheme::{Qsbr, QsbrHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use reclaim_core::{retire_box, Smr, SmrConfig, SmrHandle};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn tracked(drops: &Arc<AtomicUsize>) -> *mut Tracked {
        Box::into_raw(Box::new(Tracked(Arc::clone(drops))))
    }

    #[test]
    fn single_thread_reclaims_after_epoch_cycles() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Qsbr::new(SmrConfig::default().with_quiescence_threshold(1));
        let mut handle = scheme.register();
        for _ in 0..10 {
            handle.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut handle, tracked(&drops)) };
            handle.end_op();
        }
        handle.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 10);
        let snap = scheme.stats();
        assert_eq!(snap.retired, 10);
        assert_eq!(snap.freed, 10);
        assert!(snap.quiescent_states > 0);
    }

    #[test]
    fn nothing_is_freed_before_a_grace_period() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Qsbr::new(SmrConfig::default().with_quiescence_threshold(1000));
        let mut handle = scheme.register();
        handle.begin_op();
        for _ in 0..50 {
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut handle, tracked(&drops)) };
        }
        // Below the quiescence threshold no quiescent state was declared, so nothing
        // may be freed yet.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert_eq!(handle.local_in_limbo(), 50);
        handle.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn a_stalled_thread_blocks_reclamation() {
        // This is the behaviour that motivates the whole paper: one registered thread
        // that never quiesces keeps every other thread's limbo lists growing.
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Qsbr::new(
            SmrConfig::default()
                .with_max_threads(2)
                .with_quiescence_threshold(1),
        );
        let stalled = scheme.register(); // never calls begin_op again
        let mut worker = scheme.register();
        for _ in 0..100 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
        }
        worker.flush();
        // The stalled thread has not passed through a quiescent state, so the global
        // epoch cannot advance twice and (almost) nothing can be reclaimed. Allow the
        // small prefix freed while epochs could still advance right after startup.
        assert!(
            drops.load(Ordering::SeqCst) <= 2,
            "a stalled thread must prevent reclamation, freed = {}",
            drops.load(Ordering::SeqCst)
        );
        assert!(worker.local_in_limbo() >= 98);
        drop(stalled);
        drop(worker);
        drop(scheme);
        assert_eq!(drops.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn reclamation_resumes_once_the_stalled_thread_quiesces() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Qsbr::new(
            SmrConfig::default()
                .with_max_threads(2)
                .with_quiescence_threshold(1),
        );
        let mut sleepy = scheme.register();
        let mut worker = scheme.register();
        for _ in 0..100 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
        }
        let before = drops.load(Ordering::SeqCst);
        assert!(before <= 2);
        // The delayed thread becomes active again and quiesces a few times.
        for _ in 0..4 {
            sleepy.begin_op();
            sleepy.end_op();
            worker.begin_op();
            worker.end_op();
        }
        worker.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn concurrent_producers_all_reclaim() {
        let drops = Arc::new(AtomicUsize::new(0));
        let total = Arc::new(AtomicUsize::new(0));
        let scheme = Qsbr::new(
            SmrConfig::default()
                .with_max_threads(4)
                .with_quiescence_threshold(8),
        );
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let scheme = Arc::clone(&scheme);
                let drops = Arc::clone(&drops);
                let total = Arc::clone(&total);
                thread::spawn(move || {
                    let mut handle = scheme.register();
                    for _ in 0..500 {
                        handle.begin_op();
                        // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
                        unsafe { retire_box(&mut handle, tracked(&drops)) };
                        total.fetch_add(1, Ordering::SeqCst);
                        handle.end_op();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(scheme);
        assert_eq!(drops.load(Ordering::SeqCst), total.load(Ordering::SeqCst));
    }

    #[test]
    fn stats_report_scheme_name() {
        let scheme = Qsbr::with_defaults();
        assert_eq!(scheme.name(), "qsbr");
    }
}
