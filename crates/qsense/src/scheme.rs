//! The QSense scheme object and per-thread handle (paper Algorithm 5).

use crate::path::{FallbackFlag, Path, PresenceFlag};
use cadence::Rooster;
use qsbr::{limbo_index, CursorCheck, EpochCursor, EpochRecord, GlobalEpoch, EPOCH_BUCKETS};
use reclaim_core::retired::DropFn;
use reclaim_core::stats::{StatStripe, StatsSnapshot};
use reclaim_core::{
    membarrier, BudgetGovernor, BudgetVerdict, CachePadded, CapacityExhausted, Era, HandleCache,
    HandleTelemetry, ParkedChain, PtrScratch, Registry, RetiredPtr, ScanParts, SegBag, SegPool,
    SlotId, Smr, SmrConfig, SmrHandle, Telemetry, NO_BIRTH_ERA,
};
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-thread shared record: everything other threads may inspect.
///
/// QSense keeps *both* schemes' per-thread state up to date at all times (paper
/// §5.2): hazard pointers and retire timestamps are maintained even on the fast path
/// so that a switch to the fallback path finds every hazardous reference protected,
/// and the epoch record is maintained even on the fallback path so that switching
/// back to QSBR is immediate.
pub(crate) struct QsenseRecord {
    hps: Box<[AtomicPtr<u8>]>,
    epoch: EpochRecord,
    presence: PresenceFlag,
    /// Timestamp (scheme clock) of the owner's last sign of activity; drives the
    /// eviction extension (paper §5.2, future work).
    last_active: AtomicU64,
    /// Eviction flag, tagged with the registry **generation** of the tenancy it
    /// applies to: 0 means no eviction; a nonzero value is the (odd) generation
    /// the evictor observed before its staleness check. The flag is *effective*
    /// only while it equals the slot's current generation — a flag planted by an
    /// evictor that raced a handle drop carries a dead generation and is ignored
    /// by every reader, which closes the old residual window where a stranded
    /// flag could be mistaken for an eviction of the slot's next tenant (the
    /// matching counter increment can still linger briefly; eviction sweeps
    /// retract dead-generation flags on vacant slots). While effective, the owner no
    /// longer counts towards the all-processes-active check or towards grace
    /// periods, and every fast-path free falls back to the Cadence check (age +
    /// hazard pointers) for as long as any thread is in this state.
    evicted: AtomicU64,
}

impl QsenseRecord {
    fn new(k: usize) -> Self {
        Self {
            hps: (0..k)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            epoch: EpochRecord::new(),
            presence: PresenceFlag::new(),
            last_active: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Marks the owner as active right now: sets the presence flag, refreshes the
    /// activity timestamp and clears any standing eviction (only the owner ever
    /// clears its own eviction, and only from a point where it holds no
    /// references). Returns `true` when a standing eviction was lifted — the
    /// caller then balances the scheme's global eviction counter.
    ///
    /// The common case pays one relaxed load and no shared store for the eviction
    /// check; only when the flag is actually set does the owner issue the swap
    /// (which also arbitrates the benign race with a concurrent evictor so the
    /// counter moves exactly once per lifted eviction).
    fn mark_active(&self, now: u64) -> bool {
        self.presence.set_active();
        self.last_active.store(now, Ordering::Release);
        self.evicted.load(Ordering::Relaxed) != 0 && self.clear_eviction()
    }

    /// Clears the eviction flag regardless of which generation it tags; `true`
    /// if it was set (the caller owns the matching decrement of the scheme's
    /// eviction counter). Clearing a dead-generation flag is exactly how a
    /// re-registered slot's owner balances the stranded increment of an evictor
    /// that lost the race with its predecessor's drop.
    fn clear_eviction(&self) -> bool {
        self.evicted.swap(0, Ordering::AcqRel) != 0
    }

    /// Whether the record carries an eviction *effective for* the tenancy
    /// identified by `gen` (the slot's current registry generation). Acquire
    /// pairs with the evictor's release: observing the flag implies observing
    /// the counter increment that preceded it (see
    /// [`QSense::evict_unresponsive`]).
    fn is_evicted(&self, gen: u64) -> bool {
        self.evicted.load(Ordering::Acquire) == gen
    }

    /// Fence-free hazard-pointer publication, exactly as in Cadence.
    #[inline]
    fn set_hp(&self, index: usize, ptr: *mut u8) {
        self.hps[index].store(ptr, Ordering::Release);
        membarrier::light_barrier();
    }

    fn clear_hps(&self) {
        for slot in self.hps.iter() {
            slot.store(std::ptr::null_mut(), Ordering::Release);
        }
    }

    fn collect_hps_into(&self, out: &mut Vec<*mut u8>) {
        for slot in self.hps.iter() {
            let p = slot.load(Ordering::Acquire);
            if !p.is_null() {
                out.push(p);
            }
        }
    }
}

/// The QSense hybrid reclamation scheme (the paper's primary contribution).
pub struct QSense {
    config: SmrConfig,
    registry: Registry<QsenseRecord>,
    global_epoch: GlobalEpoch,
    /// Cooperative epoch-confirmation state (see [`EpochCursor`]): quiescent states
    /// contribute bounded slices of the "everyone at the epoch?" check instead of
    /// each sweeping the whole registry.
    cursor: EpochCursor,
    /// Number of currently evicted registered threads. Kept so the fast path's
    /// "may I free this bucket outright?" decision is **one load** instead of the
    /// O(N) registry sweep it used to be; the count is maintained conservatively
    /// (incremented before an eviction becomes visible, decremented after it is
    /// cleared), so a racing reader can only over-count — which merely routes a
    /// free through the always-safe Cadence check.
    evicted_threads: CachePadded<AtomicU64>,
    fallback: FallbackFlag,
    /// Counter stripe for events with no owning slot (parked-bag frees at drop).
    scheme_stats: CachePadded<StatStripe>,
    rooster: Mutex<Rooster>,
    /// Limbo leftovers of exited threads: the next surviving handle to flush
    /// adopts the chain into its current limbo bucket (see [`ParkedChain`]).
    parked: ParkedChain,
    /// Pools + scratch buffers of exited threads, adopted by the next
    /// registrant so handle churn is allocation-free after the first wave.
    handle_cache: HandleCache<ScanParts>,
    /// Byte-denominated limbo budget. QSense owns the strongest escalation
    /// lever of any scheme here: when limbo bytes cross the budget on the fast
    /// path, the governor trips the hybrid's own fallback switch early —
    /// QSBR-style grace periods are exactly what a stalled thread stalls, and
    /// the Cadence scan the fallback path runs needs no cooperation.
    governor: BudgetGovernor,
    /// Telemetry histograms (op latency, scan duration, retire→free delay).
    telemetry: Arc<Telemetry>,
}

impl QSense {
    /// Creates a QSense scheme, spawning its rooster threads.
    pub fn new(config: SmrConfig) -> Arc<Self> {
        let registry = Registry::new(config.max_threads, |_| {
            QsenseRecord::new(config.hp_per_thread)
        });
        let rooster = Rooster::spawn(
            config.rooster_threads,
            config.rooster_interval,
            config.use_membarrier,
        );
        let handle_cache = HandleCache::with_capacity(config.max_threads);
        let governor = BudgetGovernor::new(config.limbo_budget, config.clock.clone());
        let telemetry = Arc::new(Telemetry::from_config(&config));
        Arc::new(Self {
            config,
            registry,
            global_epoch: GlobalEpoch::new(),
            cursor: EpochCursor::new(),
            evicted_threads: CachePadded::new(AtomicU64::new(0)),
            fallback: FallbackFlag::new(),
            scheme_stats: CachePadded::new(StatStripe::new()),
            rooster: Mutex::new(rooster),
            parked: ParkedChain::new(),
            handle_cache,
            governor,
            telemetry,
        })
    }

    /// Creates a QSense scheme with default configuration.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(SmrConfig::default())
    }

    /// The configuration this scheme was created with.
    pub fn config(&self) -> &SmrConfig {
        &self.config
    }

    /// Which path the scheme is currently on.
    pub fn current_path(&self) -> Path {
        self.fallback.load()
    }

    /// The current global epoch (fast-path diagnostics).
    pub fn current_epoch(&self) -> u64 {
        self.global_epoch.load()
    }

    /// Total rooster wake-ups so far.
    pub fn rooster_wakeups(&self) -> u64 {
        self.rooster
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .wakeup_count()
    }

    /// Snapshots every published hazard pointer into `out`. Handles pass their
    /// reusable scratch buffer, sized at registration for the `N·K` worst case,
    /// so steady-state scans never allocate.
    fn protected_snapshot_into(&self, out: &mut Vec<*mut u8>) {
        self.registry
            .collect_protected(out, QsenseRecord::collect_hps_into);
    }

    /// Contributes a bounded slice of the "has every registered, non-evicted
    /// thread adopted `epoch`?" check and advances the global epoch once the
    /// cooperative pass completes. Replaces the per-quiescent-state O(N) sweep.
    ///
    /// Evicted threads count as confirmed (extension): while any thread is
    /// evicted, fast-path frees go through the Cadence check (age + hazard
    /// pointers) instead of relying on the grace period alone — see
    /// [`Self::any_evicted`] — so excluding them here is safe. An eviction lifted
    /// mid-pass is equally safe: lifting happens only at a reference-free
    /// operation boundary, which is precisely a quiescent point.
    fn poll_epoch_confirmation(&self, epoch: u64) {
        let confirmed = self.cursor.poll(epoch, self.registry.capacity(), |i| {
            // Shard-granular fast path: if every shard from `i`'s onward up to
            // `next` is wholly vacant, jump the cursor past the run in one
            // bitmap probe per shard instead of one check per slot.
            let next = self.registry.skip_vacant_shards(i);
            if next > i {
                CursorCheck::VacantRun(next)
            } else if !self.registry.is_claimed(i) {
                CursorCheck::Vacant
            } else {
                let record = self.registry.get(i);
                if record.is_evicted(self.registry.generation(i)) || record.epoch.load() == epoch {
                    CursorCheck::Confirmed
                } else {
                    CursorCheck::Lagging
                }
            }
        });
        if confirmed {
            self.global_epoch.try_advance(epoch);
        }
    }

    /// True if every registered, non-evicted thread has set its presence flag since
    /// the last reset (paper: `all_processes_active()`). Runs only while deciding
    /// to leave the fallback path, so the O(N) sweep is off the fast path.
    fn all_processes_active(&self) -> bool {
        self.registry.iter_claimed().all(|(i, record)| {
            record.is_evicted(self.registry.generation(i)) || record.presence.is_active()
        })
    }

    fn reset_presence(&self) {
        for (_, record) in self.registry.iter_all() {
            record.presence.reset();
        }
    }

    /// Number of currently evicted registered threads (extension diagnostics).
    pub fn evicted_count(&self) -> usize {
        self.evicted_threads.load(Ordering::Acquire) as usize
    }

    /// True if any registered thread is currently evicted.
    ///
    /// This runs on the fast path (every epoch-adoption bucket free), so it is a
    /// single shared load of the cache-padded eviction counter — the earlier
    /// full-registry sweep made every fast-path free O(N). Acquire (a plain load
    /// on x86/TSO) pairs with the evictor's release so the counter can lag only
    /// in the conservative direction: the increment is ordered *before* the
    /// per-record flag becomes visible, and the decrement *after* it is cleared,
    /// so any state in which a record still reads evicted is a state in which the
    /// counter is already nonzero.
    #[inline]
    fn any_evicted(&self) -> bool {
        self.evicted_threads.load(Ordering::Acquire) != 0
    }

    /// Marks activity on `record`, balancing the eviction counter if a standing
    /// eviction was lifted.
    fn note_activity(&self, record: &QsenseRecord) {
        if record.mark_active(self.config.clock.now()) {
            self.evicted_threads.fetch_sub(1, Ordering::Release);
        }
    }

    /// Eviction sweep (extension, paper §5.2 future work): marks as evicted every
    /// registered thread whose last sign of activity is older than the configured
    /// eviction timeout. Called while the system is stuck on the fallback path.
    ///
    /// Evicting a thread never endangers safety — an evicted thread's references are
    /// covered by its hazard pointers plus deferred reclamation, which every free
    /// consults for as long as any thread is evicted — it only affects which threads
    /// the progress decisions wait for. Returns the number of threads newly evicted.
    fn evict_unresponsive(&self) -> usize {
        let Some(timeout) = self.config.eviction_timeout_nanos() else {
            return 0;
        };
        let now = self.config.clock.now();
        let mut evicted = 0;
        for (i, record) in self.registry.iter_all() {
            // Snapshot the slot's generation *before* the staleness check: the
            // eviction is planted tagged with this value and re-validated after
            // the CAS, so a handle drop (and possible re-registration) slipping
            // into the gap is detected instead of stranding a flag.
            let gen = self.registry.generation(i);
            // Dead-generation flags — strands of an evictor whose plant landed
            // between a dying owner's final `mark_active` and its release, or
            // of an evictor that died between its plant and its own post-CAS
            // retraction — are retracted here, flag and counter **in the same
            // pass**, so a strand heals in exactly one sweep. This covers both
            // a vacant slot (even `gen`) and a slot that was already re-claimed
            // (odd `gen`, where previously only the successor's next
            // `mark_active` would rebalance). Only values *below* the observed
            // generation are provably dead — a value equal to an odd `gen` is a
            // live eviction of the current tenant and must not be disturbed —
            // and the exact-value CAS loses to any concurrent owner clear
            // (which then owns the matching decrement).
            let stale = record.evicted.load(Ordering::Acquire);
            if stale != 0
                && stale < gen
                && record
                    .evicted
                    .compare_exchange(stale, 0, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                self.evicted_threads.fetch_sub(1, Ordering::Relaxed);
            }
            if gen.is_multiple_of(2) {
                // Vacant slot: nothing to evict.
                continue;
            }
            if !record.is_evicted(gen)
                && now.saturating_sub(record.last_active.load(Ordering::Acquire)) > timeout
            {
                // Increment the counter *before* publishing the flag: a fast-path
                // thread that observes the flagged record (or an epoch advance
                // justified by it) is then guaranteed to observe a nonzero counter.
                // If another evictor wins the flag race, take the increment back —
                // the transient over-count only routes frees through the
                // always-safe Cadence check.
                self.evicted_threads.fetch_add(1, Ordering::Relaxed);
                if record
                    .evicted
                    .compare_exchange(0, gen, Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    if self.registry.generation(i) != gen {
                        // The slot changed hands between the staleness check and
                        // the flag CAS: the flag we just planted tags a dead
                        // generation, so no reader will honour it. Retract it —
                        // but only our exact value; a successor tenancy's
                        // legitimate eviction would carry a different generation
                        // and must not be disturbed. If the retraction CAS fails,
                        // the new owner already cleared the flag (and decremented
                        // the counter) through `mark_active`.
                        if record
                            .evicted
                            .compare_exchange(gen, 0, Ordering::AcqRel, Ordering::Relaxed)
                            .is_ok()
                        {
                            self.evicted_threads.fetch_sub(1, Ordering::Relaxed);
                        }
                    } else {
                        evicted += 1;
                    }
                } else {
                    self.evicted_threads.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
        evicted
    }

    /// A Cadence-style scan over one limbo bag: free nodes that are old enough and
    /// unprotected; keep the rest. Counters go to `stats` (the calling handle's
    /// stripe).
    fn cadence_scan(
        &self,
        bag: &mut SegBag,
        pool: &mut SegPool,
        protected: &[*mut u8],
        stats: &StatStripe,
        tele_stripe: usize,
    ) -> usize {
        // Fallback scans walk the aged prefix node by node.
        stats.add_scan_walk();
        let now = self.config.clock.now();
        let min_age = self.config.min_reclaim_age_nanos();
        let observer = self.telemetry.scan_observer(tele_stripe);
        // SAFETY: identical to Cadence's scan (paper Property 1) — QSense maintains
        // hazard pointers at all times, so Condition 1 holds for nodes retired on
        // either path; old-enough + unprotected therefore implies unreachable.
        //
        // As in Cadence, the walk stops at the first too-young node: limbo bags
        // are pushed in retirement order, so the scan touches only the aged
        // prefix (adopted parked chains behind younger nodes are merely
        // delayed, never endangered).
        let bytes_before = bag.bytes();
        // SAFETY: the bag owns these retired nodes; a node is freed only when aged past `min_age` and absent from the hazard snapshot.
        let freed = unsafe {
            bag.reclaim_if_while(
                pool,
                |node| node.is_old_enough(now, min_age),
                |node| {
                    let free = protected.binary_search(&node.addr()).is_err();
                    if free {
                        if let Some(obs) = observer.as_ref() {
                            obs.note_free(node);
                        }
                    }
                    free
                },
            )
        };
        stats.add_freed(freed as u64);
        stats.add_freed_bytes((bytes_before - bag.bytes()) as u64);
        if let Some(obs) = observer {
            obs.finish();
        }
        freed
    }
}

impl Smr for QSense {
    type Handle = QSenseHandle;

    fn try_register(self: &Arc<Self>) -> Result<QSenseHandle, CapacityExhausted> {
        let slot = self.registry.try_acquire().map_err(|e| CapacityExhausted {
            scheme: "qsense",
            capacity: e.capacity,
        })?;
        let epoch = self.global_epoch.load();
        let record = self.registry.get_mine(slot);
        record.epoch.store(epoch);
        self.note_activity(record);
        // Adopt a previous tenant's pool + scratch when available (thread-pool
        // churn; see `HandleCache`).
        let parts = self.handle_cache.adopt().unwrap_or_else(|| ScanParts {
            pool: SegPool::new(),
            scratch: PtrScratch::with_capacity(self.config.max_threads * self.config.hp_per_thread),
        });
        Ok(QSenseHandle {
            tele: HandleTelemetry::attach(&self.telemetry),
            scheme: Arc::clone(self),
            budget_stripe: BudgetGovernor::stripe_for(slot.shard()),
            slot,
            limbo: std::array::from_fn(|_| SegBag::new()),
            pool: parts.pool,
            scratch: parts.scratch,
            local_epoch: epoch,
            ops_since_quiescence: 0,
            retires_since_scan: 0,
            budget_reported: 0,
            prev_seen_path: Path::Fast,
        })
    }

    fn name(&self) -> &'static str {
        "qsense"
    }

    fn stats(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        self.registry.merge_stats(&mut snap);
        self.scheme_stats.merge_into(&mut snap);
        snap.peak_limbo_bytes = self.governor.peak_bytes();
        snap
    }

    fn budget_verdict(&self) -> Option<BudgetVerdict> {
        Some(self.governor.verdict())
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.telemetry)
    }
}

impl Drop for QSense {
    fn drop(&mut self) {
        self.rooster
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown();
        // No handles remain, so nothing can reference a parked node.
        // SAFETY: parked nodes were retired by departed handles and survive until a scan proves them unprotected.
        let (freed, freed_bytes) = unsafe { self.parked.drain_all() };
        self.scheme_stats.add_freed(freed as u64);
        self.scheme_stats.add_freed_bytes(freed_bytes as u64);
        self.governor.note_parked(-(freed_bytes as i64));
    }
}

/// Per-thread handle for [`QSense`].
pub struct QSenseHandle {
    scheme: Arc<QSense>,
    slot: SlotId,
    /// One limbo list per logical epoch (fast path); scanned as a whole by the
    /// fallback path ("QSBR's limbo_list becomes the removed_nodes_list scanned by
    /// Cadence", paper §5.2).
    limbo: [SegBag; EPOCH_BUCKETS],
    /// Recycled segments shared by all three limbo buckets, so a bucket growing
    /// past another's high-water mark still never allocates.
    pool: SegPool,
    /// Reusable buffer for hazard-pointer snapshots, sized for the worst case
    /// (`N·K` pointers) at registration so scans are allocation-free.
    scratch: PtrScratch,
    local_epoch: u64,
    /// `call_count` in Algorithm 5.
    ops_since_quiescence: usize,
    /// `free_node_later_call_count` in Algorithm 5.
    retires_since_scan: usize,
    /// Governor stripe this handle debits/credits (slot-derived, stable).
    budget_stripe: usize,
    /// Limbo-byte figure last reported to the governor (delta cursor).
    budget_reported: usize,
    /// `prev_seen_fallback_flag` in Algorithm 5.
    prev_seen_path: Path,
    /// Telemetry recording cursor (stripe + op-sampling counter).
    tele: HandleTelemetry,
}

impl QSenseHandle {
    fn record(&self) -> &QsenseRecord {
        self.scheme.registry.get_mine(self.slot)
    }

    fn stats(&self) -> &StatStripe {
        self.scheme.registry.stats(self.slot)
    }

    /// Total retired-but-unreclaimed nodes across the three limbo lists.
    pub fn limbo_size(&self) -> usize {
        self.limbo.iter().map(SegBag::len).sum()
    }

    /// Total retired-but-unreclaimed bytes across the three limbo lists.
    pub fn limbo_bytes(&self) -> usize {
        self.limbo.iter().map(SegBag::bytes).sum()
    }

    /// The path this handle last observed (for tests and diagnostics).
    pub fn last_seen_path(&self) -> Path {
        self.prev_seen_path
    }

    /// QSBR-style quiescent state (fast path): adopt the global epoch — freeing the
    /// limbo bucket the new epoch maps to — or help advance it.
    fn quiescent_state(&mut self) {
        self.stats().add_quiescent_state();
        let global = self.scheme.global_epoch.load();
        if self.local_epoch != global {
            self.record().epoch.store(global);
            self.local_epoch = global;
            let bucket = limbo_index(global);
            if self.scheme.any_evicted() {
                // Eviction extension: grace periods no longer cover evicted threads,
                // so while any thread is evicted the bucket is freed through the
                // Cadence condition instead (old enough + not hazard-pointer
                // protected), which covers evicted and non-evicted threads alike.
                self.scheme.protected_snapshot_into(&mut self.scratch);
                let stats = self.scheme.registry.stats(self.slot);
                self.scheme.cadence_scan(
                    &mut self.limbo[bucket],
                    &mut self.pool,
                    &self.scratch,
                    stats,
                    self.tele.stripe(),
                );
            } else {
                let observer = if self.limbo[bucket].is_empty() {
                    // Nothing matured in this bucket: the grace drain passes it
                    // over, and an empty drain needs no observer clock reads.
                    self.stats().add_scan_skip();
                    None
                } else {
                    // Grace-period drains free the whole bucket, no per-node tests.
                    self.stats().add_scan_wholesale();
                    self.scheme.telemetry.scan_observer(self.tele.stripe())
                };
                // SAFETY: Lemma 3 / Property 5 of the paper — a full grace period has
                // elapsed since the nodes in this bucket were retired (counting every
                // registered thread, since none is evicted), so no thread holds a
                // hazardous reference to them. Identical argument to the `qsbr` crate.
                let bytes_before = self.limbo[bucket].bytes();
                // SAFETY: grace period elapsed — see the Lemma 3 argument above.
                let freed = unsafe {
                    match observer.as_ref() {
                        Some(obs) => self.limbo[bucket].reclaim_if(&mut self.pool, |node| {
                            obs.note_free(node);
                            true
                        }),
                        None => self.limbo[bucket].reclaim_all(&mut self.pool),
                    }
                };
                if let Some(obs) = observer {
                    obs.finish();
                }
                self.stats().add_freed(freed as u64);
                self.stats().add_freed_bytes(bytes_before as u64);
            }
            self.scheme.governor.report(
                self.budget_stripe,
                self.limbo_bytes(),
                &mut self.budget_reported,
            );
        } else {
            self.scheme.poll_epoch_confirmation(global);
        }
    }

    /// Cadence-style scan over all three limbo lists (fallback path; paper Algorithm
    /// 5 lines 45–47 scan every epoch's list). Returns `true` when limbo bytes
    /// remain over the configured budget even after the scan.
    fn cadence_scan_all(&mut self) -> bool {
        self.stats().add_scan();
        self.scheme.protected_snapshot_into(&mut self.scratch);
        let stats = self.scheme.registry.stats(self.slot);
        for bag in &mut self.limbo {
            self.scheme.cadence_scan(
                bag,
                &mut self.pool,
                &self.scratch,
                stats,
                self.tele.stripe(),
            );
        }
        self.scheme.governor.report(
            self.budget_stripe,
            self.limbo_bytes(),
            &mut self.budget_reported,
        )
    }

    /// The body of `manage_qsense_state` once the batching threshold fires
    /// (Algorithm 5, lines 18–34).
    fn manage_state(&mut self) {
        // Signal that this thread is active (and lift any eviction of this thread —
        // it holds no references here, so counting it again is safe).
        self.scheme.note_activity(self.record());
        match self.scheme.fallback.load() {
            Path::Fast => {
                // Common case: run the fast path.
                self.quiescent_state();
                self.prev_seen_path = Path::Fast;
            }
            Path::Fallback => {
                // Extension: while stuck on the fallback path, evict threads that
                // have been silent for longer than the configured timeout so that a
                // permanently failed thread cannot pin the system in fallback mode
                // forever (disabled unless `eviction_timeout` is set).
                self.scheme.evict_unresponsive();
                // Try to switch back to the fast path if everyone (still counted) is
                // active again.
                if self.scheme.all_processes_active() && self.scheme.fallback.trigger_fast_path() {
                    self.stats().add_fast_path_switch();
                    // Start a fresh observation window for the next fallback episode.
                    self.scheme.reset_presence();
                    self.prev_seen_path = Path::Fast;
                    self.quiescent_state();
                } else {
                    self.prev_seen_path = Path::Fallback;
                }
            }
        }
    }
}

impl SmrHandle for QSenseHandle {
    fn begin_op(&mut self) {
        // `manage_qsense_state`: batch the real work, once every Q calls
        // (Algorithm 5, lines 13–17).
        self.ops_since_quiescence += 1;
        if self.ops_since_quiescence >= self.scheme.config.quiescence_threshold {
            self.ops_since_quiescence = 0;
            self.manage_state();
        }
    }

    fn end_op(&mut self) {}

    #[inline]
    fn protect(&mut self, index: usize, ptr: *mut u8) {
        assert!(
            index < self.scheme.config.hp_per_thread,
            "hazard-pointer index {index} out of range (K = {})",
            self.scheme.config.hp_per_thread
        );
        // Hazard pointers are maintained on *both* paths, without fences (paper §4.1:
        // protections from the fast path must already be in place when the system
        // switches to the fallback path; §5.1: no fence is needed because rooster
        // wake-ups + deferred reclamation bound visibility).
        self.record().set_hp(index, ptr);
    }

    fn clear_protections(&mut self) {
        self.record().clear_hps();
    }

    unsafe fn retire(&mut self, ptr: *mut u8, drop_fn: DropFn) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.retire_sized(ptr, drop_fn, NO_BIRTH_ERA, 0) }
    }

    unsafe fn retire_sized(
        &mut self,
        ptr: *mut u8,
        drop_fn: DropFn,
        _birth_era: Era,
        size_bytes: usize,
    ) {
        // `free_node_later` (Algorithm 5, lines 36–61).
        self.stats().add_retired(1);
        self.stats().add_retired_bytes(size_bytes as u64);
        if size_bytes == 0 {
            self.stats().add_size_unknown_retire();
        }
        let now = self.scheme.config.clock.now();
        let bucket = limbo_index(self.local_epoch);
        // Timestamps are recorded regardless of the current path (§5.2).
        // SAFETY: forwarded from the caller's contract.
        let mut node =
            unsafe { RetiredPtr::with_birth_sized(ptr, drop_fn, now, NO_BIRTH_ERA, size_bytes) };
        node.set_retire_tick(self.tele.retire_tick());
        self.limbo[bucket].push(&mut self.pool, node);
        self.retires_since_scan += 1;

        let seen = self.scheme.fallback.load();
        if seen == Path::Fallback && self.retires_since_scan >= self.scheme.config.scan_threshold {
            // Running in fallback mode: all three limbo lists are scanned.
            self.retires_since_scan = 0;
            self.cadence_scan_all();
            self.prev_seen_path = Path::Fallback;
        } else if self.prev_seen_path == Path::Fallback && seen == Path::Fast {
            // Switch back to the fast path was triggered by another thread.
            self.quiescent_state();
            self.prev_seen_path = Path::Fast;
        } else if self.prev_seen_path == Path::Fast
            && self.limbo_size() >= self.scheme.config.fallback_threshold
        {
            // This thread's limbo list has grown past C: quiescence has not been
            // possible for a while, so trigger the switch to the fallback path.
            if self.scheme.fallback.trigger_fallback() {
                self.stats().add_fallback_switch();
                self.scheme.reset_presence();
            }
            self.prev_seen_path = Path::Fallback;
            self.cadence_scan_all();
        } else if self.scheme.governor.observe(
            self.budget_stripe,
            self.limbo_bytes(),
            &mut self.budget_reported,
        ) {
            // Over the byte budget before the node-count fallback threshold C
            // fired — typically large payloads behind a stalled grace period.
            // QSense's escalation lever *is* its hybrid switch: trip the
            // fallback path early (the Cadence condition needs no cooperation
            // from a stalled thread), then scan all three lists right now.
            if seen == Path::Fast && self.scheme.fallback.trigger_fallback() {
                self.stats().add_fallback_switch();
                self.scheme.governor.count_fallback_trip();
                self.scheme.reset_presence();
            }
            self.prev_seen_path = Path::Fallback;
            self.scheme.governor.count_forced_scan();
            self.retires_since_scan = 0;
            if self.cadence_scan_all() {
                // Still over: the T + ε age gate (or live protections) keep the
                // bytes pinned. Shed a little retire-side speed so limbo stops
                // compounding while the clock catches up.
                self.scheme.governor.count_backpressure();
                std::thread::yield_now();
            }
        }
    }

    fn flush(&mut self) {
        // Adopt limbo leftovers of exited threads into the current bucket: they
        // were unlinked before the adoption, so both the grace-period argument and
        // the Cadence age check cover them from here on. O(1) splice. The bytes
        // move from the governor's parked pool onto this handle's reported
        // figure, so credit the pool by exactly the adopted amount.
        let bucket = limbo_index(self.local_epoch);
        let bytes_before = self.limbo[bucket].bytes();
        self.scheme.parked.adopt_into(&mut self.limbo[bucket]);
        let adopted = self.limbo[bucket].bytes() - bytes_before;
        self.scheme.governor.note_parked(-(adopted as i64));
        // Give both paths a chance: cycle quiescent states (frees whole buckets if
        // the epoch can advance) and run one Cadence scan (frees aged, unprotected
        // nodes even if it cannot).
        for _ in 0..2 * EPOCH_BUCKETS {
            self.quiescent_state();
        }
        self.retires_since_scan = 0;
        self.cadence_scan_all();
    }

    fn local_in_limbo(&self) -> usize {
        self.limbo_size()
    }

    fn local_limbo_bytes(&self) -> usize {
        self.limbo_bytes()
    }

    fn telemetry_op_begin(&mut self) -> Option<Instant> {
        self.tele.op_begin()
    }

    fn telemetry_op_end(&mut self, started: Instant) {
        self.tele.op_end(started);
    }
}

impl Drop for QSenseHandle {
    fn drop(&mut self) {
        self.record().clear_hps();
        self.flush();
        let mut leftovers = SegBag::new();
        for bag in &mut self.limbo {
            leftovers.splice(bag);
        }
        // Retire this handle's delta cursor, then move the surviving bytes into
        // the governor's parked pool so they stay visible to the budget until a
        // surviving handle adopts (and re-reports) them.
        let parked_bytes = leftovers.bytes();
        self.scheme
            .governor
            .note_handle_exit(self.budget_stripe, &mut self.budget_reported);
        self.scheme.governor.note_parked(parked_bytes as i64);
        self.scheme.parked.park(&mut leftovers);
        // Refresh activity and lift any standing eviction *while still the slot
        // owner* — the record must never be touched after `release`, because a
        // successor thread may already own it (clearing a successor's eviction
        // from here would let the fast path free nodes the successor still
        // protects). The refreshed `last_active` also stops any evictor that has
        // not yet passed its staleness check from flagging this slot during the
        // remainder of the drop.
        self.scheme.note_activity(self.record());
        // Leaving the system: this thread must stop blocking both the epoch advance
        // check and the all-processes-active check, which releasing the slot does.
        //
        // An evictor preempted between its staleness check and its flag CAS across
        // this entire drop can still plant a flag around this release — but the
        // flag carries the generation the evictor observed, which the release
        // retires, so no reader ever honours it for a successor tenancy
        // (`is_evicted` compares against the current generation): the *unsafe*
        // half of the old residual window is closed exactly. The bookkeeping
        // half is merely transient rather than exact: a plant landing after the
        // `note_activity` above but before the release's generation bump passes
        // the evictor's own post-CAS re-check, stranding one counter increment
        // (conservative — fast-path frees route through the always-safe Cadence
        // check) until the next eviction sweep's dead-flag retraction (which
        // rebalances flag and counter in one pass, whether the slot is still
        // vacant or already re-claimed) or the slot's next registration.
        self.scheme.registry.release(self.slot);
        // Recycle the workspace to the next registrant (see `HandleCache`).
        self.scheme.handle_cache.park(ScanParts {
            pool: std::mem::take(&mut self.pool),
            scratch: std::mem::take(&mut self.scratch),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_maintains_hps_epoch_and_presence() {
        let record = QsenseRecord::new(2);
        record.set_hp(0, 0x10 as *mut u8);
        record.set_hp(1, 0x20 as *mut u8);
        let mut out = Vec::new();
        record.collect_hps_into(&mut out);
        assert_eq!(out.len(), 2);
        record.clear_hps();
        out.clear();
        record.collect_hps_into(&mut out);
        assert!(out.is_empty());
        record.epoch.store(3);
        assert_eq!(record.epoch.load(), 3);
        record.presence.set_active();
        assert!(record.presence.is_active());
    }

    #[test]
    fn mark_active_lifts_an_eviction_exactly_once() {
        let record = QsenseRecord::new(1);
        let gen = 7; // any odd (claimed) generation
        assert!(!record.mark_active(10), "no standing eviction to lift");
        record.evicted.store(gen, Ordering::Release);
        assert!(record.is_evicted(gen));
        assert!(record.mark_active(20), "standing eviction must be lifted");
        assert!(!record.is_evicted(gen));
        assert!(!record.mark_active(30), "second call has nothing to lift");
        assert_eq!(record.last_active.load(Ordering::Acquire), 30);
    }

    #[test]
    fn eviction_flags_of_dead_generations_are_ignored_but_still_liftable() {
        let record = QsenseRecord::new(1);
        record.evicted.store(5, Ordering::Release);
        assert!(
            !record.is_evicted(7),
            "a flag tagged with a previous tenancy's generation must not be honoured"
        );
        assert!(record.is_evicted(5));
        // The current owner can still lift it (balancing the stray counter bump).
        assert!(record.mark_active(1));
        assert!(!record.is_evicted(5));
    }

    #[test]
    fn scheme_starts_on_the_fast_path() {
        let scheme = QSense::new(SmrConfig::default().with_rooster_threads(0));
        assert_eq!(scheme.current_path(), Path::Fast);
        assert_eq!(scheme.name(), "qsense");
        assert_eq!(scheme.current_epoch(), 0);
        assert_eq!(scheme.evicted_count(), 0);
        assert!(!scheme.any_evicted());
    }

    #[test]
    fn presence_reset_clears_every_slot() {
        let scheme = QSense::new(
            SmrConfig::default()
                .with_max_threads(3)
                .with_rooster_threads(0),
        );
        let handles: Vec<_> = (0..3).map(|_| scheme.register()).collect();
        assert!(
            scheme.all_processes_active(),
            "registration marks threads active"
        );
        scheme.reset_presence();
        assert!(!scheme.all_processes_active());
        drop(handles);
    }

    #[test]
    fn eviction_counter_tracks_evict_and_lift() {
        use reclaim_core::{Clock, ManualClock};
        use std::time::Duration;
        let manual = ManualClock::new();
        let scheme = QSense::new(
            SmrConfig::default()
                .with_max_threads(2)
                .with_rooster_threads(0)
                .with_eviction_timeout(Some(Duration::from_millis(1)))
                .with_clock(Clock::manual(manual.clone())),
        );
        let idle = scheme.register();
        let active = scheme.register();
        // Make the idle thread stale, refresh the active one.
        manual.advance(Duration::from_millis(5));
        scheme.note_activity(active.record());
        assert_eq!(scheme.evict_unresponsive(), 1);
        assert!(scheme.any_evicted());
        assert_eq!(scheme.evicted_count(), 1);
        // A second sweep finds nothing new.
        assert_eq!(scheme.evict_unresponsive(), 0);
        assert_eq!(scheme.evicted_count(), 1);
        // The idle thread coming back lifts its own eviction.
        scheme.note_activity(idle.record());
        assert!(!scheme.any_evicted());
        assert_eq!(scheme.evicted_count(), 0);
        drop(idle);
        drop(active);
    }

    /// The residual window the generation tags close: an evictor that snapshotted
    /// a slot's generation, then stalled across the owner's drop and a successor's
    /// registration, plants a flag tagged with the *dead* generation. The flag
    /// must not be honoured for the successor, and the counter must return to
    /// balance through the successor's normal activity path.
    #[test]
    fn stale_evictor_flag_on_a_rereigstered_slot_is_rejected_and_rebalanced() {
        let scheme = QSense::new(
            SmrConfig::default()
                .with_max_threads(1)
                .with_rooster_threads(0),
        );
        let stale_gen = {
            let first = scheme.register();
            scheme.registry.generation(first.slot.index())
        }; // first owner deregisters here
        let successor = scheme.register();
        let slot = successor.slot.index();
        let gen_now = scheme.registry.generation(slot);
        assert_eq!(gen_now, stale_gen + 2, "same slot, next tenancy");

        // Replay the stalled evictor's writes: increment, then the flag CAS with
        // the generation it observed before the turnover. The CAS itself succeeds
        // (the word was 0) — rejection happens at the generation comparison every
        // reader performs.
        scheme.evicted_threads.fetch_add(1, Ordering::Relaxed);
        let record = scheme.registry.get(slot);
        assert!(record
            .evicted
            .compare_exchange(0, stale_gen, Ordering::Release, Ordering::Relaxed)
            .is_ok());

        // No reader honours the dead-generation flag: the successor still counts
        // towards presence and grace periods.
        assert!(!record.is_evicted(gen_now));
        scheme.reset_presence();
        assert!(
            !scheme.all_processes_active(),
            "successor must not be excluded by a stale flag"
        );

        // The counter transiently over-counts (conservative: frees route through
        // the Cadence check) until the successor's next activity lifts the stray
        // flag and rebalances it exactly.
        assert_eq!(scheme.evicted_count(), 1);
        scheme.note_activity(record);
        assert_eq!(scheme.evicted_count(), 0, "counter must rebalance");
        assert_eq!(record.evicted.load(Ordering::Acquire), 0);

        // A legitimate eviction of the successor still works afterwards.
        drop(successor);
        assert_eq!(scheme.evicted_count(), 0);
    }

    /// The bookkeeping half of the drop race: an evictor whose plant lands
    /// between the dying owner's final `mark_active` and the release passes its
    /// own post-CAS generation re-check, stranding a counter increment on the
    /// now-vacant slot. The next eviction sweep must retract it.
    #[test]
    fn eviction_sweep_retracts_counter_strands_on_vacant_slots() {
        use reclaim_core::{Clock, ManualClock};
        use std::time::Duration;
        let manual = ManualClock::new();
        let scheme = QSense::new(
            SmrConfig::default()
                .with_max_threads(1)
                .with_rooster_threads(0)
                .with_eviction_timeout(Some(Duration::from_millis(1)))
                .with_clock(Clock::manual(manual.clone())),
        );
        let stale_gen = {
            let handle = scheme.register();
            scheme.registry.generation(handle.slot.index())
        }; // owner deregisters; the slot is now vacant
           // Replay the raced evictor's plant against the vacant slot.
        scheme.evicted_threads.fetch_add(1, Ordering::Relaxed);
        let record = scheme.registry.get(0);
        record.evicted.store(stale_gen, Ordering::Release);
        assert_eq!(scheme.evicted_count(), 1, "stranded over-count");
        // The sweep evicts nobody (no claimed slots) but retracts the strand.
        assert_eq!(scheme.evict_unresponsive(), 0);
        assert_eq!(
            scheme.evicted_count(),
            0,
            "sweep must rebalance the counter"
        );
        assert_eq!(record.evicted.load(Ordering::Acquire), 0);
        // Idempotent: a second sweep changes nothing.
        assert_eq!(scheme.evict_unresponsive(), 0);
        assert_eq!(scheme.evicted_count(), 0);
    }

    /// The drop-race strand must heal in **exactly one sweep** even when the
    /// slot has already been re-claimed by a successor: the planting evictor
    /// died before its own retraction, the flag carries the dead generation,
    /// and the successor has not passed an operation boundary since — the
    /// sweep's dead-flag pass (not the successor's activity) rebalances.
    #[test]
    fn eviction_sweep_retracts_counter_strands_on_reclaimed_slots_in_one_sweep() {
        use reclaim_core::{Clock, ManualClock};
        use std::time::Duration;
        let manual = ManualClock::new();
        let scheme = QSense::new(
            SmrConfig::default()
                .with_max_threads(1)
                .with_rooster_threads(0)
                .with_eviction_timeout(Some(Duration::from_millis(1)))
                .with_clock(Clock::manual(manual.clone())),
        );
        let stale_gen = {
            let handle = scheme.register();
            scheme.registry.generation(handle.slot.index())
        }; // first owner deregisters
        let successor = scheme.register();
        let slot = successor.slot.index();
        let gen_now = scheme.registry.generation(slot);
        assert_eq!(gen_now, stale_gen + 2, "same slot, next tenancy");
        // Replay the dead evictor's writes against the re-claimed slot.
        scheme.evicted_threads.fetch_add(1, Ordering::Relaxed);
        let record = scheme.registry.get(slot);
        record.evicted.store(stale_gen, Ordering::Release);
        assert_eq!(scheme.evicted_count(), 1, "stranded over-count");
        assert!(!record.is_evicted(gen_now), "dead flag is never honoured");
        // One sweep heals both halves — without evicting the (fresh) successor.
        assert_eq!(scheme.evict_unresponsive(), 0);
        assert_eq!(scheme.evicted_count(), 0, "counter rebalanced in one sweep");
        assert_eq!(record.evicted.load(Ordering::Acquire), 0, "flag retracted");
        // The successor's tenancy is untouched: it can still be legitimately
        // evicted afterwards.
        manual.advance(Duration::from_millis(5));
        assert_eq!(scheme.evict_unresponsive(), 1);
        assert!(record.is_evicted(gen_now));
        assert_eq!(scheme.evicted_count(), 1);
        drop(successor);
        assert_eq!(scheme.evicted_count(), 0);
    }

    #[test]
    fn dropping_an_evicted_handle_balances_the_counter() {
        use reclaim_core::{Clock, ManualClock};
        use std::time::Duration;
        let manual = ManualClock::new();
        let scheme = QSense::new(
            SmrConfig::default()
                .with_max_threads(2)
                .with_rooster_threads(0)
                .with_eviction_timeout(Some(Duration::from_millis(1)))
                .with_clock(Clock::manual(manual.clone())),
        );
        let idle = scheme.register();
        let active = scheme.register();
        manual.advance(Duration::from_millis(5));
        scheme.note_activity(active.record());
        assert_eq!(scheme.evict_unresponsive(), 1);
        assert_eq!(scheme.evicted_count(), 1);
        drop(idle);
        assert_eq!(scheme.evicted_count(), 0, "drop must lift the eviction");
        drop(active);
    }
}
