//! The QSense scheme object and per-thread handle (paper Algorithm 5).

use crate::path::{FallbackFlag, Path, PresenceFlag};
use cadence::Rooster;
use qsbr::{limbo_index, EpochRecord, GlobalEpoch, EPOCH_BUCKETS};
use reclaim_core::retired::DropFn;
use reclaim_core::stats::StatsSnapshot;
use reclaim_core::{
    membarrier, Registry, RetiredBag, RetiredPtr, SlotId, Smr, SmrConfig, SmrHandle, SmrStats,
};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-thread shared record: everything other threads may inspect.
///
/// QSense keeps *both* schemes' per-thread state up to date at all times (paper
/// §5.2): hazard pointers and retire timestamps are maintained even on the fast path
/// so that a switch to the fallback path finds every hazardous reference protected,
/// and the epoch record is maintained even on the fallback path so that switching
/// back to QSBR is immediate.
pub(crate) struct QsenseRecord {
    hps: Box<[AtomicPtr<u8>]>,
    epoch: EpochRecord,
    presence: PresenceFlag,
    /// Timestamp (scheme clock) of the owner's last sign of activity; drives the
    /// eviction extension (paper §5.2, future work).
    last_active: AtomicU64,
    /// True while the owner is evicted: it no longer counts towards the
    /// all-processes-active check or towards grace periods, and every fast-path free
    /// falls back to the Cadence check (age + hazard pointers) for as long as any
    /// thread is in this state.
    evicted: AtomicBool,
}

impl QsenseRecord {
    fn new(k: usize) -> Self {
        Self {
            hps: (0..k)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            epoch: EpochRecord::new(),
            presence: PresenceFlag::new(),
            last_active: AtomicU64::new(0),
            evicted: AtomicBool::new(false),
        }
    }

    /// Marks the owner as active right now: sets the presence flag, refreshes the
    /// activity timestamp and clears any standing eviction (only the owner ever
    /// clears its own eviction, and only from a point where it holds no references).
    fn mark_active(&self, now: u64) {
        self.presence.set_active();
        self.last_active.store(now, Ordering::SeqCst);
        if self.evicted.load(Ordering::SeqCst) {
            self.evicted.store(false, Ordering::SeqCst);
        }
    }

    fn is_evicted(&self) -> bool {
        self.evicted.load(Ordering::SeqCst)
    }

    /// Fence-free hazard-pointer publication, exactly as in Cadence.
    #[inline]
    fn set_hp(&self, index: usize, ptr: *mut u8) {
        self.hps[index].store(ptr, Ordering::Release);
        membarrier::light_barrier();
    }

    fn clear_hps(&self) {
        for slot in self.hps.iter() {
            slot.store(std::ptr::null_mut(), Ordering::Release);
        }
    }

    fn collect_hps_into(&self, out: &mut Vec<*mut u8>) {
        for slot in self.hps.iter() {
            let p = slot.load(Ordering::Acquire);
            if !p.is_null() {
                out.push(p);
            }
        }
    }
}

/// The QSense hybrid reclamation scheme (the paper's primary contribution).
pub struct QSense {
    config: SmrConfig,
    stats: SmrStats,
    registry: Registry<QsenseRecord>,
    global_epoch: GlobalEpoch,
    fallback: FallbackFlag,
    rooster: Mutex<Rooster>,
    parked: Mutex<Vec<RetiredBag>>,
}

impl QSense {
    /// Creates a QSense scheme, spawning its rooster threads.
    pub fn new(config: SmrConfig) -> Arc<Self> {
        let registry = Registry::new(config.max_threads, |_| {
            QsenseRecord::new(config.hp_per_thread)
        });
        let rooster = Rooster::spawn(
            config.rooster_threads,
            config.rooster_interval,
            config.use_membarrier,
        );
        Arc::new(Self {
            config,
            stats: SmrStats::new(),
            registry,
            global_epoch: GlobalEpoch::new(),
            fallback: FallbackFlag::new(),
            rooster: Mutex::new(rooster),
            parked: Mutex::new(Vec::new()),
        })
    }

    /// Creates a QSense scheme with default configuration.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(SmrConfig::default())
    }

    /// The configuration this scheme was created with.
    pub fn config(&self) -> &SmrConfig {
        &self.config
    }

    /// Which path the scheme is currently on.
    pub fn current_path(&self) -> Path {
        self.fallback.load()
    }

    /// The current global epoch (fast-path diagnostics).
    pub fn current_epoch(&self) -> u64 {
        self.global_epoch.load()
    }

    /// Total rooster wake-ups so far.
    pub fn rooster_wakeups(&self) -> u64 {
        self.rooster
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .wakeup_count()
    }

    fn protected_snapshot(&self) -> Vec<*mut u8> {
        let mut out = Vec::with_capacity(self.config.max_threads * self.config.hp_per_thread);
        for (_, record) in self.registry.iter_all() {
            record.collect_hps_into(&mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// True if every registered, non-evicted thread has adopted `epoch`. Evicted
    /// threads are excluded (extension): while any thread is evicted, fast-path frees
    /// go through [`Self::cadence_scan`]-style checks instead of relying on the grace
    /// period alone, so excluding them here is safe.
    fn all_threads_at(&self, epoch: u64) -> bool {
        self.registry
            .iter_claimed()
            .all(|(_, record)| record.is_evicted() || record.epoch.load() == epoch)
    }

    /// True if every registered, non-evicted thread has set its presence flag since
    /// the last reset (paper: `all_processes_active()`).
    fn all_processes_active(&self) -> bool {
        self.registry
            .iter_claimed()
            .all(|(_, record)| record.is_evicted() || record.presence.is_active())
    }

    fn reset_presence(&self) {
        for (_, record) in self.registry.iter_all() {
            record.presence.reset();
        }
    }

    /// Number of currently evicted registered threads (extension diagnostics).
    pub fn evicted_count(&self) -> usize {
        self.registry
            .iter_claimed()
            .filter(|(_, record)| record.is_evicted())
            .count()
    }

    /// True if any registered thread is currently evicted.
    fn any_evicted(&self) -> bool {
        self.registry
            .iter_claimed()
            .any(|(_, record)| record.is_evicted())
    }

    /// Eviction sweep (extension, paper §5.2 future work): marks as evicted every
    /// registered thread whose last sign of activity is older than the configured
    /// eviction timeout. Called while the system is stuck on the fallback path.
    ///
    /// Evicting a thread never endangers safety — an evicted thread's references are
    /// covered by its hazard pointers plus deferred reclamation, which every free
    /// consults for as long as any thread is evicted — it only affects which threads
    /// the progress decisions wait for. Returns the number of threads newly evicted.
    fn evict_unresponsive(&self) -> usize {
        let Some(timeout) = self.config.eviction_timeout_nanos() else {
            return 0;
        };
        let now = self.config.clock.now();
        let mut evicted = 0;
        for (_, record) in self.registry.iter_claimed() {
            if !record.is_evicted()
                && now.saturating_sub(record.last_active.load(Ordering::SeqCst)) > timeout
            {
                record.evicted.store(true, Ordering::SeqCst);
                evicted += 1;
            }
        }
        evicted
    }

    /// A Cadence-style scan over one limbo bag: free nodes that are old enough and
    /// unprotected; keep the rest.
    fn cadence_scan(&self, bag: &mut RetiredBag, protected: &[*mut u8]) -> usize {
        let now = self.config.clock.now();
        let min_age = self.config.min_reclaim_age_nanos();
        // SAFETY: identical to Cadence's scan (paper Property 1) — QSense maintains
        // hazard pointers at all times, so Condition 1 holds for nodes retired on
        // either path; old-enough + unprotected therefore implies unreachable.
        let freed = unsafe {
            bag.reclaim_if(|node| {
                node.is_old_enough(now, min_age) && protected.binary_search(&node.addr()).is_err()
            })
        };
        self.stats.add_freed(freed as u64);
        freed
    }
}

impl Smr for QSense {
    type Handle = QSenseHandle;

    fn register(self: &Arc<Self>) -> QSenseHandle {
        let slot = self
            .registry
            .acquire()
            .expect("qsense: more threads registered than config.max_threads");
        let epoch = self.global_epoch.load();
        let record = self.registry.get_mine(slot);
        record.epoch.store(epoch);
        record.mark_active(self.config.clock.now());
        QSenseHandle {
            scheme: Arc::clone(self),
            slot,
            limbo: std::array::from_fn(|_| RetiredBag::new()),
            local_epoch: epoch,
            ops_since_quiescence: 0,
            retires_since_scan: 0,
            prev_seen_path: Path::Fast,
        }
    }

    fn name(&self) -> &'static str {
        "qsense"
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }
}

impl Drop for QSense {
    fn drop(&mut self) {
        self.rooster
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown();
        let mut parked = self.parked.lock().unwrap_or_else(|e| e.into_inner());
        for mut bag in parked.drain(..) {
            let freed = unsafe { bag.reclaim_all() };
            self.stats.add_freed(freed as u64);
        }
    }
}

/// Per-thread handle for [`QSense`].
pub struct QSenseHandle {
    scheme: Arc<QSense>,
    slot: SlotId,
    /// One limbo list per logical epoch (fast path); scanned as a whole by the
    /// fallback path ("QSBR's limbo_list becomes the removed_nodes_list scanned by
    /// Cadence", paper §5.2).
    limbo: [RetiredBag; EPOCH_BUCKETS],
    local_epoch: u64,
    /// `call_count` in Algorithm 5.
    ops_since_quiescence: usize,
    /// `free_node_later_call_count` in Algorithm 5.
    retires_since_scan: usize,
    /// `prev_seen_fallback_flag` in Algorithm 5.
    prev_seen_path: Path,
}

impl QSenseHandle {
    fn record(&self) -> &QsenseRecord {
        self.scheme.registry.get_mine(self.slot)
    }

    /// Total retired-but-unreclaimed nodes across the three limbo lists.
    pub fn limbo_size(&self) -> usize {
        self.limbo.iter().map(RetiredBag::len).sum()
    }

    /// The path this handle last observed (for tests and diagnostics).
    pub fn last_seen_path(&self) -> Path {
        self.prev_seen_path
    }

    /// QSBR-style quiescent state (fast path): adopt the global epoch — freeing the
    /// limbo bucket the new epoch maps to — or help advance it.
    fn quiescent_state(&mut self) {
        self.scheme.stats.add_quiescent_state();
        let global = self.scheme.global_epoch.load();
        if self.local_epoch != global {
            self.record().epoch.store(global);
            self.local_epoch = global;
            let bucket = limbo_index(global);
            if self.scheme.any_evicted() {
                // Eviction extension: grace periods no longer cover evicted threads,
                // so while any thread is evicted the bucket is freed through the
                // Cadence condition instead (old enough + not hazard-pointer
                // protected), which covers evicted and non-evicted threads alike.
                let protected = self.scheme.protected_snapshot();
                self.scheme.cadence_scan(&mut self.limbo[bucket], &protected);
            } else {
                // SAFETY: Lemma 3 / Property 5 of the paper — a full grace period has
                // elapsed since the nodes in this bucket were retired (counting every
                // registered thread, since none is evicted), so no thread holds a
                // hazardous reference to them. Identical argument to the `qsbr` crate.
                let freed = unsafe { self.limbo[bucket].reclaim_all() };
                self.scheme.stats.add_freed(freed as u64);
            }
        } else if self.scheme.all_threads_at(global) {
            self.scheme.global_epoch.try_advance(global);
        }
    }

    /// Cadence-style scan over all three limbo lists (fallback path; paper Algorithm
    /// 5 lines 45–47 scan every epoch's list).
    fn cadence_scan_all(&mut self) {
        self.scheme.stats.add_scan();
        let protected = self.scheme.protected_snapshot();
        for bag in &mut self.limbo {
            self.scheme.cadence_scan(bag, &protected);
        }
    }

    /// The body of `manage_qsense_state` once the batching threshold fires
    /// (Algorithm 5, lines 18–34).
    fn manage_state(&mut self) {
        // Signal that this thread is active (and lift any eviction of this thread —
        // it holds no references here, so counting it again is safe).
        self.record().mark_active(self.scheme.config.clock.now());
        match self.scheme.fallback.load() {
            Path::Fast => {
                // Common case: run the fast path.
                self.quiescent_state();
                self.prev_seen_path = Path::Fast;
            }
            Path::Fallback => {
                // Extension: while stuck on the fallback path, evict threads that
                // have been silent for longer than the configured timeout so that a
                // permanently failed thread cannot pin the system in fallback mode
                // forever (disabled unless `eviction_timeout` is set).
                self.scheme.evict_unresponsive();
                // Try to switch back to the fast path if everyone (still counted) is
                // active again.
                if self.scheme.all_processes_active() && self.scheme.fallback.trigger_fast_path() {
                    self.scheme.stats.add_fast_path_switch();
                    // Start a fresh observation window for the next fallback episode.
                    self.scheme.reset_presence();
                    self.prev_seen_path = Path::Fast;
                    self.quiescent_state();
                } else {
                    self.prev_seen_path = Path::Fallback;
                }
            }
        }
    }
}

impl SmrHandle for QSenseHandle {
    fn begin_op(&mut self) {
        // `manage_qsense_state`: batch the real work, once every Q calls
        // (Algorithm 5, lines 13–17).
        self.ops_since_quiescence += 1;
        if self.ops_since_quiescence >= self.scheme.config.quiescence_threshold {
            self.ops_since_quiescence = 0;
            self.manage_state();
        }
    }

    fn end_op(&mut self) {}

    #[inline]
    fn protect(&mut self, index: usize, ptr: *mut u8) {
        assert!(
            index < self.scheme.config.hp_per_thread,
            "hazard-pointer index {index} out of range (K = {})",
            self.scheme.config.hp_per_thread
        );
        // Hazard pointers are maintained on *both* paths, without fences (paper §4.1:
        // protections from the fast path must already be in place when the system
        // switches to the fallback path; §5.1: no fence is needed because rooster
        // wake-ups + deferred reclamation bound visibility).
        self.record().set_hp(index, ptr);
    }

    fn clear_protections(&mut self) {
        self.record().clear_hps();
    }

    unsafe fn retire(&mut self, ptr: *mut u8, drop_fn: DropFn) {
        // `free_node_later` (Algorithm 5, lines 36–61).
        self.scheme.stats.add_retired(1);
        let now = self.scheme.config.clock.now();
        let bucket = limbo_index(self.local_epoch);
        // Timestamps are recorded regardless of the current path (§5.2).
        // SAFETY: forwarded from the caller's contract.
        self.limbo[bucket].push(unsafe { RetiredPtr::new(ptr, drop_fn, now) });
        self.retires_since_scan += 1;

        let seen = self.scheme.fallback.load();
        if seen == Path::Fallback
            && self.retires_since_scan >= self.scheme.config.scan_threshold
        {
            // Running in fallback mode: all three limbo lists are scanned.
            self.retires_since_scan = 0;
            self.cadence_scan_all();
            self.prev_seen_path = Path::Fallback;
        } else if self.prev_seen_path == Path::Fallback && seen == Path::Fast {
            // Switch back to the fast path was triggered by another thread.
            self.quiescent_state();
            self.prev_seen_path = Path::Fast;
        } else if self.prev_seen_path == Path::Fast
            && self.limbo_size() >= self.scheme.config.fallback_threshold
        {
            // This thread's limbo list has grown past C: quiescence has not been
            // possible for a while, so trigger the switch to the fallback path.
            if self.scheme.fallback.trigger_fallback() {
                self.scheme.stats.add_fallback_switch();
                self.scheme.reset_presence();
            }
            self.prev_seen_path = Path::Fallback;
            self.cadence_scan_all();
        }
    }

    fn flush(&mut self) {
        // Give both paths a chance: cycle quiescent states (frees whole buckets if
        // the epoch can advance) and run one Cadence scan (frees aged, unprotected
        // nodes even if it cannot).
        for _ in 0..2 * EPOCH_BUCKETS {
            self.quiescent_state();
        }
        self.retires_since_scan = 0;
        self.cadence_scan_all();
    }

    fn local_in_limbo(&self) -> usize {
        self.limbo_size()
    }
}

impl Drop for QSenseHandle {
    fn drop(&mut self) {
        self.record().clear_hps();
        self.flush();
        let mut leftovers = RetiredBag::new();
        for bag in &mut self.limbo {
            leftovers.append(bag);
        }
        if !leftovers.is_empty() {
            self.scheme
                .parked
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(leftovers);
        }
        // Leaving the system: this thread must stop blocking both the epoch advance
        // check and the all-processes-active check, which releasing the slot does.
        self.scheme.registry.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_maintains_hps_epoch_and_presence() {
        let record = QsenseRecord::new(2);
        record.set_hp(0, 0x10 as *mut u8);
        record.set_hp(1, 0x20 as *mut u8);
        let mut out = Vec::new();
        record.collect_hps_into(&mut out);
        assert_eq!(out.len(), 2);
        record.clear_hps();
        out.clear();
        record.collect_hps_into(&mut out);
        assert!(out.is_empty());
        record.epoch.store(3);
        assert_eq!(record.epoch.load(), 3);
        record.presence.set_active();
        assert!(record.presence.is_active());
    }

    #[test]
    fn scheme_starts_on_the_fast_path() {
        let scheme = QSense::new(SmrConfig::default().with_rooster_threads(0));
        assert_eq!(scheme.current_path(), Path::Fast);
        assert_eq!(scheme.name(), "qsense");
        assert_eq!(scheme.current_epoch(), 0);
    }

    #[test]
    fn presence_reset_clears_every_slot() {
        let scheme = QSense::new(
            SmrConfig::default()
                .with_max_threads(3)
                .with_rooster_threads(0),
        );
        let handles: Vec<_> = (0..3).map(|_| scheme.register()).collect();
        assert!(scheme.all_processes_active(), "registration marks threads active");
        scheme.reset_presence();
        assert!(!scheme.all_processes_active());
        drop(handles);
    }
}
