//! Path-switching state: the fallback flag and the presence flags.
//!
//! QSense switches between its two modes through a single shared *fallback flag*
//! (paper §5.2). Any worker that notices its limbo list has grown past `C` sets the
//! flag to the fallback path; any worker that notices every registered thread has
//! been active again sets it back to the fast path. Activity is tracked through one
//! *presence flag* per thread, set by the owner after each batch of operations and
//! reset collectively whenever a path switch happens (the paper only says the array
//! is "reset periodically"; resetting at switches is the natural choice because each
//! fallback episode needs a fresh observation window).

use std::sync::atomic::{AtomicBool, Ordering};

/// Which reclamation path QSense is currently using.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Path {
    /// The common case: QSBR-style epoch reclamation.
    Fast,
    /// The degraded mode entered under prolonged process delays: Cadence scans.
    Fallback,
}

/// The shared fallback flag.
///
/// ## Memory ordering
///
/// The flag is *read* on the hot path (every `retire` checks it), so the load is
/// acquire — a plain load on x86/TSO. Acquire/release suffices for correctness
/// because the paper's safety argument never depends on *when* a thread observes a
/// path switch (§4.1/§5.2): hazard pointers and retire timestamps are maintained
/// on **both** paths at all times, so a thread acting on a stale path value only
/// chooses a different — equally safe — reclamation condition. The switch CASes
/// are AcqRel so the winner's preceding state (e.g. the presence reset) is
/// visible to threads that subsequently observe the new path; no decision
/// compares this flag against unrelated atomics, so no `SeqCst` total order is
/// needed.
#[derive(Debug, Default)]
pub struct FallbackFlag {
    /// `false` = fast path, `true` = fallback path.
    fallback: AtomicBool,
}

impl FallbackFlag {
    /// Creates a flag in the fast-path state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current path (one acquire load — the hot-path cost).
    #[inline]
    pub fn load(&self) -> Path {
        if self.fallback.load(Ordering::Acquire) {
            Path::Fallback
        } else {
            Path::Fast
        }
    }

    /// Attempts to switch fast → fallback. Returns `true` if this call performed the
    /// transition (so exactly one thread accounts for each switch).
    pub fn trigger_fallback(&self) -> bool {
        self.fallback
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Attempts to switch fallback → fast. Returns `true` if this call performed the
    /// transition.
    pub fn trigger_fast_path(&self) -> bool {
        self.fallback
            .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// One thread's presence flag (owned slot in the registry record).
///
/// Release/acquire is enough: presence only feeds *liveness* decisions (when to
/// switch back to the fast path), never a freeing decision — a stale read can
/// delay or hasten a path switch, both of which are safe because every node's
/// protection state is maintained identically on both paths.
#[derive(Debug, Default)]
pub struct PresenceFlag {
    active: AtomicBool,
}

impl PresenceFlag {
    /// Creates an inactive flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the owning thread as active (paper: `is_active(process_id)`).
    #[inline]
    pub fn set_active(&self) {
        self.active.store(true, Ordering::Release);
    }

    /// Reads whether the owner has been active since the last reset.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Clears the flag (done collectively at path switches).
    #[inline]
    pub fn reset(&self) {
        self.active.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_flag_starts_on_the_fast_path() {
        let flag = FallbackFlag::new();
        assert_eq!(flag.load(), Path::Fast);
    }

    #[test]
    fn only_one_thread_wins_each_transition() {
        let flag = FallbackFlag::new();
        assert!(flag.trigger_fallback());
        assert!(
            !flag.trigger_fallback(),
            "second trigger must observe it is already set"
        );
        assert_eq!(flag.load(), Path::Fallback);
        assert!(flag.trigger_fast_path());
        assert!(!flag.trigger_fast_path());
        assert_eq!(flag.load(), Path::Fast);
    }

    #[test]
    fn presence_flag_set_and_reset() {
        let p = PresenceFlag::new();
        assert!(!p.is_active());
        p.set_active();
        assert!(p.is_active());
        p.reset();
        assert!(!p.is_active());
    }

    #[test]
    fn concurrent_fallback_triggers_count_once() {
        use std::sync::Arc;
        use std::thread;
        let flag = Arc::new(FallbackFlag::new());
        let wins: usize = (0..8)
            .map(|_| {
                let flag = Arc::clone(&flag);
                thread::spawn(move || usize::from(flag.trigger_fallback()))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(wins, 1);
        assert_eq!(flag.load(), Path::Fallback);
    }
}
