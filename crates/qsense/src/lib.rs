//! # qsense — hybrid fast/robust memory reclamation
//!
//! The primary contribution of *"Fast and Robust Memory Reclamation for Concurrent
//! Data Structures"* (SPAA 2016): a reclamation scheme that is as fast as
//! quiescent-state-based reclamation in the common case and as robust as hazard
//! pointers under prolonged process delays.
//!
//! ## How it works
//!
//! * **Fast path (QSBR).** While every worker thread keeps passing through quiescent
//!   states, reclamation uses epochs and limbo lists — zero per-node overhead on
//!   traversals.
//! * **Fallback path (Cadence).** When one thread's limbo list grows past the
//!   threshold `C` (evidence that quiescence has not happened for a long time —
//!   e.g. a thread is stuck in I/O or descheduled), the scheme sets a shared
//!   *fallback flag*. All threads then reclaim through Cadence scans: hazard
//!   pointers plus deferred reclamation, robust to the delayed thread.
//! * **Switching back.** Threads set per-thread *presence flags* as they run; once a
//!   thread observes every registered thread active again it flips the flag back and
//!   the scheme resumes QSBR.
//!
//! Crucially (paper §4.1), hazard pointers and retire timestamps are maintained *at
//! all times*, even on the fast path — otherwise references acquired before a switch
//! would be unprotected — and they are maintained **without memory fences**, which is
//! only safe because the fallback path is Cadence (rooster threads + deferred
//! reclamation) rather than classic HP.
//!
//! ## Using it
//!
//! ```
//! use qsense::QSense;
//! use reclaim_core::{retire_box, Smr, SmrConfig, SmrHandle};
//!
//! let scheme = QSense::new(SmrConfig::for_list().with_rooster_threads(1));
//! let mut handle = scheme.register();
//!
//! handle.begin_op();                    // manage_qsense_state()
//! let node = Box::into_raw(Box::new(42u64));
//! handle.protect(0, node.cast());      // assign_HP()  (then re-validate!)
//! // ... traverse / unlink `node` from your structure ...
//! unsafe { retire_box(&mut handle, node) };  // free_node_later()
//! handle.end_op();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod path;
mod scheme;

pub use path::{FallbackFlag, Path, PresenceFlag};
pub use scheme::{QSense, QSenseHandle};

#[cfg(test)]
// Sanctioned raw-protocol site: these tests exercise the scheme's own
// `protect`/retire interface below the guard layer.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use reclaim_core::{retire_box, Clock, ManualClock, Smr, SmrConfig, SmrHandle};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn tracked(drops: &Arc<AtomicUsize>) -> *mut Tracked {
        Box::into_raw(Box::new(Tracked(Arc::clone(drops))))
    }

    /// Deterministic QSense: manual clock, no rooster threads, small thresholds.
    fn test_scheme(manual: &ManualClock, c: usize, q: usize) -> Arc<QSense> {
        QSense::new(
            SmrConfig::default()
                .with_clock(Clock::manual(manual.clone()))
                .with_rooster_threads(0)
                .with_rooster_interval(Duration::from_millis(10))
                .with_rooster_epsilon(Duration::from_millis(1))
                .with_quiescence_threshold(q)
                .with_scan_threshold(4)
                .with_fallback_threshold(c)
                .with_max_threads(4),
        )
    }

    #[test]
    fn fast_path_reclaims_like_qsbr() {
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = test_scheme(&manual, 1_000_000, 1);
        let mut handle = scheme.register();
        for _ in 0..50 {
            handle.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut handle, tracked(&drops)) };
            handle.end_op();
        }
        handle.flush();
        assert_eq!(scheme.current_path(), Path::Fast);
        assert_eq!(drops.load(Ordering::SeqCst), 50);
        let snap = scheme.stats();
        assert_eq!(snap.fallback_switches, 0);
        assert!(snap.quiescent_states > 0);
        assert_eq!(snap.traversal_fences, 0);
    }

    #[test]
    fn delayed_thread_triggers_fallback_switch() {
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        // C = 20: once a worker accumulates 20 unreclaimed nodes the switch happens.
        let scheme = test_scheme(&manual, 20, 1);
        let _delayed = scheme.register(); // registers, then never calls begin_op
        let mut worker = scheme.register();
        for _ in 0..30 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
        }
        assert_eq!(
            scheme.current_path(),
            Path::Fallback,
            "limbo grew past C while a thread was delayed: QSense must switch"
        );
        assert_eq!(scheme.stats().fallback_switches, 1);
        // On the fallback path, aged nodes are reclaimed even though the delayed
        // thread never quiesces — this is the robustness QSBR lacks.
        manual.advance(Duration::from_millis(100));
        for _ in 0..10 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
        }
        assert!(
            drops.load(Ordering::SeqCst) >= 30,
            "fallback path must reclaim aged nodes despite the delayed thread (freed = {})",
            drops.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn system_switches_back_to_fast_path_when_all_threads_are_active() {
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = test_scheme(&manual, 20, 1);
        let mut delayed = scheme.register();
        let mut worker = scheme.register();
        // Phase 1: `delayed` is inactive; worker pushes the system into fallback.
        for _ in 0..30 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
        }
        assert_eq!(scheme.current_path(), Path::Fallback);
        // Phase 2: the delayed thread wakes up and both threads keep working; some
        // thread must notice everyone is active and switch back to the fast path.
        for _ in 0..10 {
            delayed.begin_op();
            delayed.end_op();
            worker.begin_op();
            worker.end_op();
        }
        assert_eq!(scheme.current_path(), Path::Fast);
        assert_eq!(scheme.stats().fast_path_switches, 1);
        // And reclamation proceeds normally afterwards.
        for _ in 0..20 {
            delayed.begin_op();
            delayed.end_op();
            worker.begin_op();
            worker.end_op();
        }
        worker.flush();
        delayed.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 30);
    }

    #[test]
    fn fallback_respects_hazard_pointers_and_age() {
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = test_scheme(&manual, 5, 1);
        let mut reader = scheme.register();
        let mut worker = scheme.register();

        // The reader protects one node that the worker will retire.
        let protected = tracked(&drops);
        reader.protect(0, protected.cast());
        // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
        unsafe { retire_box(&mut worker, protected) };

        // Push the worker past C so the system is in fallback mode.
        for _ in 0..10 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
        }
        assert_eq!(scheme.current_path(), Path::Fallback);

        // Even after aging, the protected node must survive every scan.
        manual.advance(Duration::from_millis(50));
        worker.flush();
        let freed_before_release = drops.load(Ordering::SeqCst);
        assert!(
            freed_before_release >= 9,
            "unprotected aged nodes are freed"
        );
        assert_eq!(worker.local_in_limbo(), 11 - freed_before_release);

        reader.clear_protections();
        worker.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn multi_threaded_stress_reclaims_everything_eventually() {
        use std::thread;
        let drops = Arc::new(AtomicUsize::new(0));
        let allocated = Arc::new(AtomicUsize::new(0));
        let scheme = QSense::new(
            SmrConfig::default()
                .with_max_threads(4)
                .with_quiescence_threshold(16)
                .with_scan_threshold(32)
                .with_fallback_threshold(256)
                .with_rooster_threads(1)
                .with_rooster_interval(Duration::from_millis(1)),
        );
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let scheme = Arc::clone(&scheme);
                let drops = Arc::clone(&drops);
                let allocated = Arc::clone(&allocated);
                thread::spawn(move || {
                    let mut handle = scheme.register();
                    for i in 0..2000 {
                        handle.begin_op();
                        // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
                        unsafe { retire_box(&mut handle, tracked(&drops)) };
                        allocated.fetch_add(1, Ordering::SeqCst);
                        if i % 128 == 0 {
                            std::thread::yield_now();
                        }
                        handle.end_op();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(scheme);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            allocated.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn liveness_bound_2nc_holds_on_the_fallback_path() {
        // Property 4: with a legal C, at most 2·N·C retired nodes exist at any time.
        // We check the per-thread version (≤ 2·C) during a run where the fallback
        // threshold is tiny and nodes age instantly.
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = test_scheme(&manual, 8, 1);
        let _delayed = scheme.register();
        let mut worker = scheme.register();
        for i in 0..200 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
            // Nodes age quickly so the fallback scans can make progress.
            manual.advance(Duration::from_millis(3));
            assert!(
                worker.local_in_limbo() <= 2 * 8 + 4,
                "iteration {i}: limbo {} exceeded the 2C liveness bound",
                worker.local_in_limbo()
            );
        }
    }

    /// Deterministic QSense with the eviction extension enabled.
    fn eviction_scheme(manual: &ManualClock, c: usize, timeout_ms: u64) -> Arc<QSense> {
        QSense::new(
            SmrConfig::default()
                .with_clock(Clock::manual(manual.clone()))
                .with_rooster_threads(0)
                .with_rooster_interval(Duration::from_millis(10))
                .with_rooster_epsilon(Duration::from_millis(1))
                .with_quiescence_threshold(1)
                .with_scan_threshold(4)
                .with_fallback_threshold(c)
                .with_eviction_timeout(Some(Duration::from_millis(timeout_ms)))
                .with_max_threads(4),
        )
    }

    #[test]
    fn without_eviction_a_crashed_thread_pins_the_system_in_fallback() {
        // The published behaviour (paper §5.2, last paragraph): a thread that never
        // recovers keeps QSense on the fallback path forever.
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = test_scheme(&manual, 20, 1);
        let _crashed = scheme.register(); // never active again
        let mut worker = scheme.register();
        for _ in 0..200 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
            manual.advance(Duration::from_millis(5));
        }
        assert_eq!(scheme.current_path(), Path::Fallback);
        assert_eq!(scheme.stats().fast_path_switches, 0);
        assert_eq!(scheme.evicted_count(), 0, "eviction is disabled by default");
    }

    #[test]
    fn eviction_recovers_the_fast_path_after_a_permanent_thread_failure() {
        // Extension: with an eviction timeout configured, the crashed thread is
        // evicted and the system returns to (and stays on) the fast path.
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = eviction_scheme(&manual, 20, 50);
        let _crashed = scheme.register(); // never active again
        let mut worker = scheme.register();
        // Phase 1: drive the system into fallback mode.
        for _ in 0..30 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
        }
        assert_eq!(scheme.current_path(), Path::Fallback);
        // Phase 2: let the crashed thread exceed the eviction timeout, keep working.
        manual.advance(Duration::from_millis(100));
        for _ in 0..20 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
            manual.advance(Duration::from_millis(5));
        }
        assert_eq!(
            scheme.evicted_count(),
            1,
            "the silent thread must be evicted"
        );
        assert_eq!(
            scheme.current_path(),
            Path::Fast,
            "after eviction the system must return to the fast path"
        );
        // The worker kept retiring during recovery, so it may have bounced through
        // fallback more than once; what matters is that every fallback episode ended
        // in a recovery (impossible without eviction, see the previous test).
        let snap = scheme.stats();
        assert!(snap.fast_path_switches >= 1);
        assert_eq!(snap.fast_path_switches, snap.fallback_switches);
        // Phase 3: reclamation keeps working on the fast path despite the crashed
        // thread (grace periods no longer wait for it; frees go through the Cadence
        // condition while it stays evicted).
        manual.advance(Duration::from_millis(100));
        worker.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn an_evicted_thread_rejoins_when_it_becomes_active_again() {
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = eviction_scheme(&manual, 15, 30);
        let mut sleepy = scheme.register();
        let mut worker = scheme.register();
        // Drive into fallback, evict the sleeper, recover the fast path.
        for _ in 0..25 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
        }
        manual.advance(Duration::from_millis(60));
        for _ in 0..10 {
            worker.begin_op();
            worker.end_op();
        }
        assert_eq!(scheme.evicted_count(), 1);
        assert_eq!(scheme.current_path(), Path::Fast);
        // The sleeper wakes up: its first operation boundary clears the eviction.
        sleepy.begin_op();
        sleepy.end_op();
        assert_eq!(scheme.evicted_count(), 0, "activity lifts the eviction");
        assert_eq!(scheme.current_path(), Path::Fast);
        // With everyone participating again, plain grace periods reclaim everything.
        manual.advance(Duration::from_millis(60));
        for _ in 0..10 {
            sleepy.begin_op();
            sleepy.end_op();
            worker.begin_op();
            worker.end_op();
        }
        worker.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 25);
    }

    #[test]
    fn eviction_still_respects_the_evicted_threads_hazard_pointers() {
        // Safety of the extension: an evicted thread may in reality be alive and
        // holding a protected reference; that node must survive until the protection
        // is dropped, no matter what the eviction logic decides.
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = eviction_scheme(&manual, 10, 20);
        let mut slow_reader = scheme.register();
        let mut worker = scheme.register();

        // The slow reader protects a node, then goes silent (as a descheduled thread
        // would, mid-operation).
        let protected = tracked(&drops);
        slow_reader.protect(0, protected.cast());
        // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
        unsafe { retire_box(&mut worker, protected) };

        // Worker drives the system into fallback, the reader gets evicted, the
        // system returns to the fast path, and plenty of time passes.
        for _ in 0..20 {
            worker.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut worker, tracked(&drops)) };
            worker.end_op();
        }
        manual.advance(Duration::from_millis(50));
        for _ in 0..20 {
            worker.begin_op();
            worker.end_op();
            manual.advance(Duration::from_millis(5));
        }
        assert_eq!(scheme.evicted_count(), 1);
        worker.flush();
        // Every node except the protected one is reclaimable by now.
        assert_eq!(
            drops.load(Ordering::SeqCst),
            20,
            "the evicted thread's protected node must survive"
        );
        // The reader finally drops its protection; the node becomes reclaimable.
        slow_reader.clear_protections();
        manual.advance(Duration::from_millis(50));
        worker.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 21);
    }

    #[test]
    fn switch_counters_are_monotonic_and_paired() {
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = test_scheme(&manual, 10, 1);
        let mut delayed = scheme.register();
        let mut worker = scheme.register();
        for round in 0..3 {
            // Delay phase: worker alone, drives the system into fallback.
            for _ in 0..15 {
                worker.begin_op();
                // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
                unsafe { retire_box(&mut worker, tracked(&drops)) };
                worker.end_op();
            }
            assert_eq!(scheme.current_path(), Path::Fallback, "round {round}");
            // Recovery phase: both threads active, system returns to the fast path.
            manual.advance(Duration::from_millis(20));
            for _ in 0..10 {
                delayed.begin_op();
                delayed.end_op();
                worker.begin_op();
                worker.end_op();
            }
            assert_eq!(scheme.current_path(), Path::Fast, "round {round}");
        }
        let snap = scheme.stats();
        assert_eq!(snap.fallback_switches, 3);
        assert_eq!(snap.fast_path_switches, 3);
    }
}
