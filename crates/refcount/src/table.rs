//! The shared reference-count table.
//!
//! The reference-counting techniques the paper cites ([9, 12, 15, 30]) keep a counter
//! *inside every node*. The data structures in this workspace are deliberately
//! scheme-agnostic (they traffic in type-erased pointers and know nothing about the
//! reclamation scheme's bookkeeping), so the per-node counter is replaced by a fixed
//! table of counters indexed by a hash of the node's address. The substitution is
//! conservative: two nodes whose addresses collide share a counter, which can only
//! *delay* reclamation (a node is freed only when its counter bucket is zero), never
//! make it unsafe. What the substitution preserves — and what matters for the paper's
//! argument that RC is expensive — is the cost profile: every node access performs an
//! atomic read-modify-write on shared memory.

use reclaim_core::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of counter buckets. Collisions only delay reclamation, so the table
/// does not need to be sized to the data structure; it needs to be large enough that
/// the handful of pointers simultaneously protected by the worker threads rarely
/// collide.
pub const DEFAULT_BUCKETS: usize = 1 << 14;

/// A table of shared reference counters indexed by pointer address.
#[derive(Debug)]
pub struct CountTable {
    buckets: Box<[CachePadded<AtomicU64>]>,
    mask: usize,
}

impl CountTable {
    /// Creates a table with `buckets` counters (rounded up to a power of two).
    pub fn new(buckets: usize) -> Self {
        let size = buckets.next_power_of_two().max(2);
        Self {
            buckets: (0..size)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            mask: size - 1,
        }
    }

    /// Number of counter buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if the table has no buckets (never the case after construction).
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Maps a pointer to its bucket index (Fibonacci hashing on the address).
    #[inline]
    fn index(&self, ptr: *mut u8) -> usize {
        let addr = ptr as usize as u64;
        // Multiplicative hashing spreads the (aligned, clustered) heap addresses
        // across the table; the exact constant is 2^64 / phi.
        let hashed = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (hashed >> 32) as usize & self.mask
    }

    /// Increments the counter covering `ptr` and returns the bucket index.
    ///
    /// The `SeqCst` read-modify-write is the point of the whole scheme: it both
    /// announces the reference *and* orders the announcement before the caller's
    /// subsequent validation load, playing the role the explicit fence plays in the
    /// classic hazard-pointer protocol (and costing roughly the same, which is why
    /// the paper's related work dismisses RC for read-mostly workloads).
    #[inline]
    pub fn acquire(&self, ptr: *mut u8) -> usize {
        let index = self.index(ptr);
        self.buckets[index].fetch_add(1, Ordering::SeqCst);
        index
    }

    /// Decrements the counter covering `ptr`.
    #[inline]
    pub fn release(&self, ptr: *mut u8) {
        let index = self.index(ptr);
        let previous = self.buckets[index].fetch_sub(1, Ordering::SeqCst);
        debug_assert!(previous > 0, "reference-count underflow");
    }

    /// Current count of the bucket covering `ptr`.
    #[inline]
    pub fn count(&self, ptr: *mut u8) -> u64 {
        self.buckets[self.index(ptr)].load(Ordering::SeqCst)
    }

    /// True if no thread currently announces a reference that hashes to `ptr`'s
    /// bucket. Collisions make this conservative: a `false` answer may be caused by a
    /// different pointer, which only delays reclamation.
    #[inline]
    pub fn is_unreferenced(&self, ptr: *mut u8) -> bool {
        self.count(ptr) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn acquire_release_round_trip() {
        let table = CountTable::new(64);
        let ptr = 0x1000 as *mut u8;
        assert!(table.is_unreferenced(ptr));
        table.acquire(ptr);
        assert_eq!(table.count(ptr), 1);
        assert!(!table.is_unreferenced(ptr));
        table.acquire(ptr);
        assert_eq!(table.count(ptr), 2);
        table.release(ptr);
        table.release(ptr);
        assert!(table.is_unreferenced(ptr));
    }

    #[test]
    fn table_size_is_a_power_of_two() {
        assert_eq!(CountTable::new(100).len(), 128);
        assert_eq!(CountTable::new(128).len(), 128);
        assert_eq!(CountTable::new(1).len(), 2);
        assert!(!CountTable::new(1).is_empty());
    }

    #[test]
    fn distinct_pointers_usually_use_distinct_buckets() {
        let table = CountTable::new(DEFAULT_BUCKETS);
        // Heap-like addresses: 64-byte strides.
        let a = 0x7f00_0000_0000 as *mut u8;
        let b = 0x7f00_0000_0040 as *mut u8;
        table.acquire(a);
        // Whether or not they collide, the invariants hold; but with the default
        // table size these two must not collide (regression guard on the hash).
        assert!(table.is_unreferenced(b));
        table.release(a);
    }

    #[test]
    fn concurrent_acquires_and_releases_balance_out() {
        const ADDR: usize = 0xDEAD_B000;
        let table = Arc::new(CountTable::new(256));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let table = Arc::clone(&table);
                thread::spawn(move || {
                    let ptr = ADDR as *mut u8;
                    for _ in 0..1_000 {
                        table.acquire(ptr);
                        table.release(ptr);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(table.is_unreferenced(ADDR as *mut u8));
    }
}
