//! The reference-counting scheme object and per-thread handle.

use crate::table::{CountTable, DEFAULT_BUCKETS};
use reclaim_core::retired::DropFn;
use reclaim_core::stats::{StatStripe, StatsSnapshot};
use reclaim_core::{
    BudgetGovernor, BudgetVerdict, CapacityExhausted, Era, HandleCache, HandleTelemetry,
    ParkedChain, PtrScratch, RetiredPtr, ScanParts, SegBag, SegPool, ShardedStats, Smr, SmrConfig,
    SmrHandle, Telemetry, NO_BIRTH_ERA,
};
use std::sync::Arc;
use std::time::Instant;

/// Reference-counting reclamation (the paper's related-work baseline, §8
/// "Reference counting" [9, 12, 15, 30]).
///
/// Every protected node access performs an atomic increment on a shared counter and
/// every hand-over-hand step performs the matching decrement; a retired node may be
/// freed once its counter is zero. The counters live in a shared [`CountTable`]
/// indexed by node address rather than inside the nodes (see that module's docs for
/// why the substitution is faithful). The scheme exists to reproduce the related-work
/// claim that RC's per-access read-modify-write makes it the slowest of the classic
/// techniques on read-mostly workloads.
pub struct RefCount {
    config: SmrConfig,
    /// Per-handle counter stripes (RefCount has no slot registry, so stripes are
    /// dealt out round-robin at registration).
    stats: ShardedStats,
    table: CountTable,
    /// Retired nodes left behind by exiting threads while still referenced;
    /// adopted by the next flushing handle or drained at scheme drop (see
    /// [`ParkedChain`]).
    parked: ParkedChain,
    /// Pools + slot buffers of exited threads, adopted by the next registrant
    /// so handle churn is allocation-free after the first wave.
    handle_cache: HandleCache<ScanParts>,
    /// Byte-denominated limbo budget. RC's counter check is safe at any point,
    /// so the escalation ladder is the standard one: forced scan on the retire
    /// path, then retire-side backpressure while a referenced (or colliding)
    /// node keeps its bucket pinned above the budget.
    governor: BudgetGovernor,
    /// Optional latency/delay histograms (op latency, counter-sweep duration,
    /// retire→free delay); disabled unless the config asks for them.
    telemetry: Arc<Telemetry>,
}

impl RefCount {
    /// Creates a reference-counting scheme with the given configuration.
    pub fn new(config: SmrConfig) -> Arc<Self> {
        Self::with_buckets(config, DEFAULT_BUCKETS)
    }

    /// Creates a scheme with an explicit counter-table size (tests use small tables
    /// to exercise collisions).
    pub fn with_buckets(config: SmrConfig, buckets: usize) -> Arc<Self> {
        let stats = ShardedStats::new(config.max_threads);
        let handle_cache = HandleCache::with_capacity(config.max_threads);
        let governor = BudgetGovernor::new(config.limbo_budget, config.clock.clone());
        let telemetry = Arc::new(Telemetry::from_config(&config));
        Arc::new(Self {
            config,
            stats,
            table: CountTable::new(buckets),
            parked: ParkedChain::new(),
            handle_cache,
            governor,
            telemetry,
        })
    }

    /// Creates a scheme with default configuration.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(SmrConfig::default())
    }

    /// The configuration this scheme was created with.
    pub fn config(&self) -> &SmrConfig {
        &self.config
    }

    /// The shared counter table (exposed for tests).
    pub fn table(&self) -> &CountTable {
        &self.table
    }

    /// Frees every node in `bag` whose counter bucket is currently zero. Returns the
    /// number of nodes freed; counters go to `stats` (the calling handle's stripe),
    /// drained segments to `pool`.
    fn scan_into(
        &self,
        bag: &mut SegBag,
        pool: &mut SegPool,
        stats: &StatStripe,
        tele_stripe: usize,
    ) -> usize {
        stats.add_scan();
        // Every sweep tests each node's counter bucket individually.
        stats.add_scan_walk();
        let observer = self.telemetry.scan_observer(tele_stripe);
        // SAFETY: a retired node is already unlinked. If its counter bucket is zero
        // then no thread currently announces a reference that could cover it; a
        // thread announcing a reference *after* this load must re-validate the node's
        // reachability (rule 2 of the integration methodology) and will find it
        // unlinked, so it can never dereference the node. The SeqCst counter
        // operations on both sides give the total order this argument needs — the
        // same structure as Michael's hazard-pointer scan proof, with "counter
        // bucket is non-zero" in place of "a hazard pointer matches".
        let bytes_before = bag.bytes();
        // SAFETY: see the counter-scan argument above — a zero bucket means no reader can still reach the node.
        let freed = unsafe {
            bag.reclaim_if(pool, |node| {
                let free = self.table.is_unreferenced(node.addr());
                if free {
                    if let Some(obs) = observer.as_ref() {
                        obs.note_free(node);
                    }
                }
                free
            })
        };
        stats.add_freed(freed as u64);
        stats.add_freed_bytes((bytes_before - bag.bytes()) as u64);
        if let Some(obs) = observer {
            obs.finish();
        }
        freed
    }
}

impl Smr for RefCount {
    type Handle = RefCountHandle;

    // RefCount is registry-less (stat stripes are shared round-robin past
    // `max_threads`), so registration can never exhaust capacity.
    fn try_register(self: &Arc<Self>) -> Result<RefCountHandle, CapacityExhausted> {
        // Adopt a previous tenant's pool + slot buffer when available
        // (thread-pool churn; see `HandleCache`); otherwise pre-warm for the
        // scan threshold (capped) so even the first bag fill recycles instead
        // of allocating.
        let mut parts = self.handle_cache.adopt().unwrap_or_else(|| ScanParts {
            pool: SegPool::with_node_capacity((self.config.scan_threshold + 1).min(2048)),
            scratch: PtrScratch::with_capacity(self.config.hp_per_thread),
        });
        // Fresh buffers are empty; adopted ones are already all-null with the
        // right length (the previous owner's drop ran `clear_protections`).
        // Either way this is in-capacity and allocation-free.
        parts.scratch.clear();
        parts
            .scratch
            .resize(self.config.hp_per_thread, std::ptr::null_mut());
        let stripe = self.stats.assign_stripe();
        Ok(RefCountHandle {
            stripe,
            budget_stripe: BudgetGovernor::stripe_for(stripe),
            tele: HandleTelemetry::attach(&self.telemetry),
            scheme: Arc::clone(self),
            slots: parts.scratch,
            retired: SegBag::new(),
            pool: parts.pool,
            since_last_scan: 0,
            budget_reported: 0,
        })
    }

    fn name(&self) -> &'static str {
        "rc"
    }

    fn stats(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.peak_limbo_bytes = self.governor.peak_bytes();
        snap
    }

    fn budget_verdict(&self) -> Option<BudgetVerdict> {
        Some(self.governor.verdict())
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.telemetry)
    }
}

impl Drop for RefCount {
    fn drop(&mut self) {
        // No handle remains, so no reference announcement remains either.
        // SAFETY: parked nodes were retired by departed handles and survive until a scan proves them unprotected.
        let (freed, freed_bytes) = unsafe { self.parked.drain_all() };
        self.stats.stripe(0).add_freed(freed as u64);
        self.stats.stripe(0).add_freed_bytes(freed_bytes as u64);
        self.governor.note_parked(-(freed_bytes as i64));
    }
}

/// Per-thread handle for [`RefCount`].
pub struct RefCountHandle {
    scheme: Arc<RefCount>,
    /// Index of this handle's counter stripe in the scheme's [`ShardedStats`].
    stripe: usize,
    /// The pointer currently announced through each protection slot (so the matching
    /// decrement can be issued when the slot is overwritten or cleared). Stored
    /// in a [`PtrScratch`] so the buffer can be recycled through the scheme's
    /// [`HandleCache`]; it is all-null whenever it changes hands.
    slots: PtrScratch,
    retired: SegBag,
    /// Recycled segments backing `retired`, pre-warmed for the scan threshold so
    /// even the first bag fill never allocates.
    pool: SegPool,
    since_last_scan: usize,
    /// Governor stripe this handle debits/credits (stats-stripe-derived, stable).
    budget_stripe: usize,
    /// Limbo-byte figure last reported to the governor (delta cursor).
    budget_reported: usize,
    /// Per-handle telemetry view (sampled op stamps + retire ticks).
    tele: HandleTelemetry,
}

// SAFETY: the raw pointers in `slots` are only bookkeeping for which counters to
// decrement; the handle is used by one thread at a time (all methods take `&mut
// self`), so moving it between threads is fine.
unsafe impl Send for RefCountHandle {}

impl RefCountHandle {
    fn stats(&self) -> &StatStripe {
        self.scheme.stats.stripe(self.stripe)
    }

    /// Scans, then reports the surviving bytes to the governor. Returns `true`
    /// when limbo remains over the configured budget even after the scan.
    fn scan(&mut self) -> bool {
        self.scheme.scan_into(
            &mut self.retired,
            &mut self.pool,
            self.scheme.stats.stripe(self.stripe),
            self.tele.stripe(),
        );
        self.scheme.governor.report(
            self.budget_stripe,
            self.retired.bytes(),
            &mut self.budget_reported,
        )
    }

    fn release_slot(&mut self, index: usize) {
        let old = self.slots[index];
        if !old.is_null() {
            self.scheme.table.release(old);
            self.slots[index] = std::ptr::null_mut();
        }
    }
}

impl SmrHandle for RefCountHandle {
    fn begin_op(&mut self) {}

    fn end_op(&mut self) {
        // Holding announcements across operations would only delay reclamation, but
        // dropping them eagerly keeps the counters tight and matches how an intrusive
        // RC implementation drops its references when local variables go out of
        // scope.
        self.clear_protections();
    }

    #[inline]
    fn protect(&mut self, index: usize, ptr: *mut u8) {
        assert!(
            index < self.slots.len(),
            "protection index {index} out of range (K = {})",
            self.slots.len()
        );
        let old = self.slots[index];
        if old == ptr {
            return;
        }
        if !ptr.is_null() {
            // Announce the new reference *before* dropping the old one so that a
            // hand-over-hand traversal never leaves a window where neither node is
            // covered.
            self.scheme.table.acquire(ptr);
        }
        if !old.is_null() {
            self.scheme.table.release(old);
        }
        self.slots[index] = ptr;
    }

    fn clear_protections(&mut self) {
        for index in 0..self.slots.len() {
            self.release_slot(index);
        }
    }

    unsafe fn retire(&mut self, ptr: *mut u8, drop_fn: DropFn) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.retire_sized(ptr, drop_fn, NO_BIRTH_ERA, 0) }
    }

    unsafe fn retire_sized(
        &mut self,
        ptr: *mut u8,
        drop_fn: DropFn,
        _birth_era: Era,
        size_bytes: usize,
    ) {
        self.stats().add_retired(1);
        self.stats().add_retired_bytes(size_bytes as u64);
        if size_bytes == 0 {
            self.stats().add_size_unknown_retire();
        }
        let now = self.scheme.config.clock.now();
        // SAFETY: forwarded from the caller's contract.
        let mut node =
            unsafe { RetiredPtr::with_birth_sized(ptr, drop_fn, now, NO_BIRTH_ERA, size_bytes) };
        node.set_retire_tick(self.tele.retire_tick());
        self.retired.push(&mut self.pool, node);
        self.since_last_scan += 1;
        if self.since_last_scan >= self.scheme.config.scan_threshold {
            self.since_last_scan = 0;
            self.scan();
        } else if self.scheme.governor.observe(
            self.budget_stripe,
            self.retired.bytes(),
            &mut self.budget_reported,
        ) {
            // Over the byte budget before the node-count threshold fired —
            // large payloads. The counter check is safe at any point, so scan
            // right now; if the bytes stay pinned (a referenced or colliding
            // node), shed a little retire-side speed.
            self.scheme.governor.count_forced_scan();
            self.since_last_scan = 0;
            if self.scan() {
                self.scheme.governor.count_backpressure();
                std::thread::yield_now();
            }
        }
    }

    fn flush(&mut self) {
        // Adopt leftovers of exited threads so they rejoin the scan cycle; the
        // bytes move from the governor's parked pool onto this handle's
        // reported figure, so credit the pool by exactly the adopted amount.
        let bytes_before = self.retired.bytes();
        self.scheme.parked.adopt_into(&mut self.retired);
        let adopted = self.retired.bytes() - bytes_before;
        self.scheme.governor.note_parked(-(adopted as i64));
        self.since_last_scan = 0;
        self.scan();
    }

    fn local_in_limbo(&self) -> usize {
        self.retired.len()
    }

    fn local_limbo_bytes(&self) -> usize {
        self.retired.bytes()
    }

    fn telemetry_op_begin(&mut self) -> Option<Instant> {
        self.tele.op_begin()
    }

    fn telemetry_op_end(&mut self, started: Instant) {
        self.tele.op_end(started);
    }
}

impl Drop for RefCountHandle {
    fn drop(&mut self) {
        self.clear_protections();
        self.scan();
        // Retire this handle's delta cursor, then move the surviving bytes into
        // the governor's parked pool so they stay visible to the budget until a
        // surviving handle adopts (and re-reports) them.
        let parked_bytes = self.retired.bytes();
        self.scheme
            .governor
            .note_handle_exit(self.budget_stripe, &mut self.budget_reported);
        self.scheme.governor.note_parked(parked_bytes as i64);
        // O(1) chain splice; adopted by the next flushing handle or freed at
        // scheme drop.
        self.scheme.parked.park(&mut self.retired);
        // Recycle the pool + (all-null, post-`clear_protections`) slot buffer
        // to the next registrant.
        self.scheme.handle_cache.park(ScanParts {
            pool: std::mem::take(&mut self.pool),
            scratch: std::mem::take(&mut self.slots),
        });
    }
}

#[cfg(test)]
// Sanctioned raw-protocol site: these tests exercise the scheme's own
// `protect`/retire interface below the guard layer.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use reclaim_core::retire_box;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn tracked(drops: &Arc<AtomicUsize>) -> *mut Tracked {
        Box::into_raw(Box::new(Tracked(Arc::clone(drops))))
    }

    #[test]
    fn protect_and_clear_balance_the_counters() {
        let scheme = RefCount::new(SmrConfig::default().with_hp_per_thread(2));
        let mut handle = scheme.register();
        let a = 0x1000 as *mut u8;
        let b = 0x2000 as *mut u8;
        handle.protect(0, a);
        handle.protect(1, b);
        assert_eq!(scheme.table().count(a), 1);
        assert_eq!(scheme.table().count(b), 1);
        // Re-protecting the same pointer is idempotent.
        handle.protect(0, a);
        assert_eq!(scheme.table().count(a), 1);
        // Moving a slot to a new pointer releases the old one.
        handle.protect(0, b);
        assert!(scheme.table().is_unreferenced(a));
        assert_eq!(scheme.table().count(b), 2);
        handle.clear_protections();
        assert!(scheme.table().is_unreferenced(b));
    }

    #[test]
    fn a_referenced_node_is_not_freed() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = RefCount::new(
            SmrConfig::default()
                .with_hp_per_thread(2)
                .with_scan_threshold(1),
        );
        let mut reader = scheme.register();
        let mut deleter = scheme.register();
        let node = tracked(&drops);
        reader.protect(0, node.cast());
        // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
        unsafe { retire_box(&mut deleter, node) };
        deleter.flush();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "referenced node must survive"
        );
        reader.clear_protections();
        deleter.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unreferenced_nodes_are_freed_at_the_scan_threshold() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = RefCount::new(
            SmrConfig::default()
                .with_hp_per_thread(1)
                .with_scan_threshold(8),
        );
        let mut handle = scheme.register();
        for _ in 0..8 {
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut handle, tracked(&drops)) };
        }
        // The 8th retire crossed the threshold and triggered a scan.
        assert_eq!(drops.load(Ordering::SeqCst), 8);
        let snap = scheme.stats();
        assert_eq!(snap.retired, 8);
        assert_eq!(snap.freed, 8);
        assert!(snap.scans >= 1);
    }

    #[test]
    fn colliding_pointers_only_delay_reclamation() {
        let drops = Arc::new(AtomicUsize::new(0));
        // A two-bucket table forces collisions.
        let scheme = RefCount::with_buckets(
            SmrConfig::default()
                .with_hp_per_thread(1)
                .with_scan_threshold(1),
            2,
        );
        let mut reader = scheme.register();
        let mut deleter = scheme.register();
        let protected = tracked(&drops);
        let doomed = tracked(&drops);
        reader.protect(0, protected.cast());
        // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
        unsafe { retire_box(&mut deleter, doomed) };
        deleter.flush();
        // Whether or not `doomed` collided with `protected`, it must not be freed
        // unsafely; once the reader lets go, everything can be reclaimed.
        reader.clear_protections();
        deleter.flush();
        // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
        unsafe { retire_box(&mut deleter, protected) };
        deleter.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn handle_drop_parks_still_referenced_nodes() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = RefCount::new(
            SmrConfig::default()
                .with_hp_per_thread(1)
                .with_scan_threshold(1_000),
        );
        let mut reader = scheme.register();
        let node = tracked(&drops);
        reader.protect(0, node.cast());
        {
            let mut deleter = scheme.register();
            // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
            unsafe { retire_box(&mut deleter, node) };
            // deleter exits while the reader still references the node
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(reader);
        drop(scheme);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "scheme drop frees parked nodes"
        );
    }

    #[test]
    fn scheme_reports_name() {
        let scheme = RefCount::with_defaults();
        assert_eq!(scheme.name(), "rc");
        assert!(scheme.config().hp_per_thread >= 1);
    }
}
