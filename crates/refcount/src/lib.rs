//! # refcount — reference-counting reclamation baseline
//!
//! The first class of techniques the paper's related work discusses (§8,
//! "Reference counting" [9, 12, 15, 30]): every access to a node increments a shared
//! counter, every release decrements it, and a removed node may be freed once its
//! counter drops to zero. The technique is easy to reason about but pays an atomic
//! read-modify-write per node visited, which is why the paper (and the literature it
//! cites) considers it uncompetitive for read-mostly traversals — the same cost
//! argument that motivates removing the per-node fence from hazard pointers.
//!
//! This crate implements that baseline behind the workspace's common
//! [`Smr`](reclaim_core::Smr) / [`SmrHandle`](reclaim_core::SmrHandle) interface so
//! that it can be dropped into the same benchmarks as the paper's schemes. Because
//! the interface is type-erased (nodes carry no scheme-specific fields), the
//! per-node counters are kept in a shared address-indexed table rather than inside
//! the nodes; see [`table`] for why this preserves both the safety argument and the
//! cost profile. DESIGN.md records the substitution.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod scheme;
pub mod table;

pub use scheme::{RefCount, RefCountHandle};
pub use table::CountTable;

#[cfg(test)]
// Sanctioned raw-protocol site: these tests exercise the scheme's own
// `protect`/retire interface below the guard layer.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use reclaim_core::{retire_box, Smr, SmrConfig, SmrHandle};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn concurrent_protect_retire_traffic_never_double_frees_or_leaks() {
        let drops = Arc::new(AtomicUsize::new(0));
        let retired = Arc::new(AtomicUsize::new(0));
        let scheme = RefCount::new(
            SmrConfig::default()
                .with_max_threads(8)
                .with_hp_per_thread(2)
                .with_scan_threshold(16),
        );
        let threads: Vec<_> = (0..6)
            .map(|_| {
                let scheme = Arc::clone(&scheme);
                let drops = Arc::clone(&drops);
                let retired = Arc::clone(&retired);
                thread::spawn(move || {
                    let mut handle = scheme.register();
                    for i in 0..400_u64 {
                        handle.begin_op();
                        let node = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
                        // Briefly protect our own allocation (as a traversal would),
                        // then unprotect and retire it.
                        handle.protect((i % 2) as usize, node.cast());
                        handle.clear_protections();
                        // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
                        unsafe { retire_box(&mut handle, node) };
                        retired.fetch_add(1, Ordering::SeqCst);
                        handle.end_op();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(scheme);
        assert_eq!(drops.load(Ordering::SeqCst), retired.load(Ordering::SeqCst));
    }

    #[test]
    fn stats_expose_scan_counts() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = RefCount::new(SmrConfig::default().with_scan_threshold(4));
        let mut handle = scheme.register();
        for _ in 0..12 {
            let node = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
            // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
            unsafe { retire_box(&mut handle, node) };
        }
        handle.flush();
        let snap = scheme.stats();
        assert_eq!(snap.retired, 12);
        assert_eq!(snap.freed, 12);
        assert!(snap.scans >= 3);
        assert_eq!(snap.in_limbo(), 0);
    }
}
