//! **Figure 5, top-middle**: scalability of memory reclamation on the skip list
//! (20 000 keys, 50% updates) — None, QSBR, QSense, HP; throughput vs threads.
//!
//! Expected shape (paper): as for the list, but with a larger gap between QSBR and
//! QSense because the skip list maintains up to 35 hazard pointers per thread.

use bench::{fig5_schemes, key_range, run_series, thread_counts};
use workload::{report, OpMix, Structure, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::new(key_range(Structure::SkipList), OpMix::updates_50());
    println!(
        "Figure 5 (top-middle): skip list, {} keys, 50% updates, threads = {:?}",
        spec.key_range,
        thread_counts()
    );
    let baseline = run_series(Structure::SkipList, fig5_schemes()[0], spec);
    report::print_series("none (leaky baseline)", &baseline, None);
    for scheme in &fig5_schemes()[1..] {
        let series = run_series(Structure::SkipList, *scheme, spec);
        report::print_series(scheme.name(), &series, Some(&baseline));
    }
}
