//! **Figure 5, top-middle**: scalability of memory reclamation on the skip list
//! (20 000 keys, 50% updates) — None, QSBR, QSense, HP; throughput vs threads.
//!
//! Expected shape (paper): as for the list, but with a larger gap between QSBR and
//! QSense because the skip list maintains up to 35 hazard pointers per thread.
//!
//! Besides the text table, the run emits **`BENCH_fig5_scaling_skiplist.json`**
//! in the workspace root so the figure's numbers are tracked across revisions.

use bench::{fig5_schemes, key_range, run_and_emit_series, thread_counts};
use workload::{OpMix, Structure, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::new(key_range(Structure::SkipList), OpMix::updates_50());
    println!(
        "Figure 5 (top-middle): skip list, {} keys, 50% updates, threads = {:?}",
        spec.key_range,
        thread_counts()
    );
    run_and_emit_series(
        Structure::SkipList,
        &fig5_schemes(),
        spec,
        "BENCH_fig5_scaling_skiplist.json",
        "fig5_scaling_skiplist",
        "cargo bench -p bench --bench fig5_scaling_skiplist",
    );
}
