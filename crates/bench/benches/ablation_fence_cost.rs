//! **Ablation A3** (§3.2): the cost of the per-node memory fence.
//!
//! A Criterion microbenchmark of the protection primitive itself: publishing one
//! hazard pointer and re-validating, in a tight loop, under classic HP (store +
//! `mfence`), Cadence (store + compiler fence) and QSense (same as Cadence, plus the
//! epoch bookkeeping at operation boundaries). This isolates the instruction-level
//! difference that produces the figure-level gaps.

use criterion::{criterion_group, criterion_main, Criterion};
use reclaim_core::{Smr, SmrConfig, SmrHandle};
use std::hint::black_box;

fn protect_loop<H: SmrHandle>(handle: &mut H, rounds: u64) {
    for i in 0..rounds {
        // Publish a (fake but nonnull) protected address, as a traversal would for
        // every node it visits, then pretend to validate it.
        let ptr = (0x1000 + (i % 64) * 8) as *mut u8;
        handle.protect(0, ptr);
        black_box(ptr);
    }
}

fn bench_protect(c: &mut Criterion) {
    let mut group = c.benchmark_group("protect_per_node");
    let rounds = 1_024_u64;
    group.throughput(criterion::Throughput::Elements(rounds));

    let config = SmrConfig::default().with_rooster_threads(1);

    let hp = hazard::Hazard::new(config.clone());
    let mut hp_handle = hp.register();
    group.bench_function("hp_store_plus_mfence", |b| {
        b.iter(|| protect_loop(&mut hp_handle, rounds))
    });

    let cadence = cadence::Cadence::new(config.clone());
    let mut cadence_handle = cadence.register();
    group.bench_function("cadence_store_only", |b| {
        b.iter(|| protect_loop(&mut cadence_handle, rounds))
    });

    let qsense = qsense::QSense::new(config.clone());
    let mut qsense_handle = qsense.register();
    group.bench_function("qsense_store_only", |b| {
        b.iter(|| protect_loop(&mut qsense_handle, rounds))
    });

    let qsbr = qsbr::Qsbr::new(config);
    let mut qsbr_handle = qsbr.register();
    group.bench_function("qsbr_noop", |b| {
        b.iter(|| protect_loop(&mut qsbr_handle, rounds))
    });

    group.finish();
}

criterion_group!(benches, bench_protect);
criterion_main!(benches);
