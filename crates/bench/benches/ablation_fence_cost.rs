//! **Ablation A3** (§3.2): the cost of the per-node memory fence.
//!
//! A microbenchmark of the protection primitive itself: publishing one hazard
//! pointer and re-validating, in a tight loop, under classic HP (store + `mfence`),
//! Cadence (store + compiler fence) and QSense (same as Cadence, plus the epoch
//! bookkeeping at operation boundaries). This isolates the instruction-level
//! difference that produces the figure-level gaps.
//!
//! Besides the text table, the run emits **`BENCH_ablation_fence.json`** in the
//! workspace root (same envelope as `BENCH_overhead.json`): one row per scheme
//! with the mean cost of one publish+validate round.

use bench::json::{self, JsonObject};
use bench::point_seconds;
use reclaim_core::{Smr, SmrConfig, SmrHandle};
use std::hint::black_box;
use std::time::Instant;

// Sanctioned raw-protocol site: this ablation measures the raw protection
// primitive itself, below the guard layer.
#[allow(clippy::disallowed_methods)]
fn protect_loop<H: SmrHandle>(handle: &mut H, rounds: u64) {
    for i in 0..rounds {
        // Publish a (fake but nonnull) protected address, as a traversal would for
        // every node it visits, then pretend to validate it.
        let ptr = (0x1000 + (i % 64) * 8) as *mut u8;
        handle.protect(0, ptr);
        black_box(ptr);
    }
}

/// Runs `protect_loop` repeatedly for roughly `point_seconds()` and returns the
/// mean cost of one publish+validate round.
fn measure<H: SmrHandle>(label: &str, handle: &mut H) -> f64 {
    const ROUNDS: u64 = 1_024;
    // Warm up code and caches.
    protect_loop(handle, ROUNDS);
    let budget = point_seconds();
    let start = Instant::now();
    let mut total_rounds = 0u64;
    while start.elapsed().as_secs_f64() < budget {
        protect_loop(handle, ROUNDS);
        total_rounds += ROUNDS;
    }
    let ns_per_round = start.elapsed().as_nanos() as f64 / total_rounds as f64;
    println!("{label:<26} {ns_per_round:8.2} ns/protect");
    ns_per_round
}

fn row(scheme: &str, variant: &str, ns: f64) -> JsonObject {
    JsonObject::new()
        .str_field("scheme", scheme)
        .str_field("variant", variant)
        .int_field("threads", 1)
        .num_field("protect_ns_per_op", ns, 2)
}

fn main() {
    println!("Ablation A3: cost of one hazard-pointer publication");
    let config = SmrConfig::default().with_rooster_threads(1);
    let mut rows = Vec::new();

    let hp = hazard::Hazard::new(config.clone());
    let ns = measure("hp_store_plus_mfence", &mut hp.register());
    rows.push(row("hp", "store_plus_mfence", ns));

    let cadence = cadence::Cadence::new(config.clone());
    let ns = measure("cadence_store_only", &mut cadence.register());
    rows.push(row("cadence", "store_only", ns));

    let qsense = qsense::QSense::new(config.clone());
    let ns = measure("qsense_store_only", &mut qsense.register());
    rows.push(row("qsense", "store_only", ns));

    let qsbr = qsbr::Qsbr::new(config);
    let ns = measure("qsbr_noop", &mut qsbr.register());
    rows.push(row("qsbr", "noop", ns));

    let meta = [
        ("point_seconds", format!("{}", point_seconds())),
        ("unit", "\"nanoseconds per protect round\"".to_string()),
    ];
    let path = json::workspace_file("BENCH_ablation_fence.json");
    match json::write_report(
        &path,
        "ablation_fence_cost",
        "cargo bench -p bench --bench ablation_fence_cost",
        &meta,
        &rows,
    ) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}
