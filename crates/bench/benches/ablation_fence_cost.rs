//! **Ablation A3** (§3.2): the cost of the per-node memory fence.
//!
//! A microbenchmark of the protection primitive itself: publishing one hazard
//! pointer and re-validating, in a tight loop, under classic HP (store + `mfence`),
//! Cadence (store + compiler fence) and QSense (same as Cadence, plus the epoch
//! bookkeeping at operation boundaries). This isolates the instruction-level
//! difference that produces the figure-level gaps.

use bench::point_seconds;
use reclaim_core::{Smr, SmrConfig, SmrHandle};
use std::hint::black_box;
use std::time::Instant;

fn protect_loop<H: SmrHandle>(handle: &mut H, rounds: u64) {
    for i in 0..rounds {
        // Publish a (fake but nonnull) protected address, as a traversal would for
        // every node it visits, then pretend to validate it.
        let ptr = (0x1000 + (i % 64) * 8) as *mut u8;
        handle.protect(0, ptr);
        black_box(ptr);
    }
}

/// Runs `protect_loop` repeatedly for roughly `point_seconds()` and reports the
/// mean cost of one publish+validate round.
fn measure<H: SmrHandle>(label: &str, handle: &mut H) {
    const ROUNDS: u64 = 1_024;
    // Warm up code and caches.
    protect_loop(handle, ROUNDS);
    let budget = point_seconds();
    let start = Instant::now();
    let mut total_rounds = 0u64;
    while start.elapsed().as_secs_f64() < budget {
        protect_loop(handle, ROUNDS);
        total_rounds += ROUNDS;
    }
    let ns_per_round = start.elapsed().as_nanos() as f64 / total_rounds as f64;
    println!("{label:<26} {ns_per_round:8.2} ns/protect");
}

fn main() {
    println!("Ablation A3: cost of one hazard-pointer publication");
    let config = SmrConfig::default().with_rooster_threads(1);

    let hp = hazard::Hazard::new(config.clone());
    measure("hp_store_plus_mfence", &mut hp.register());

    let cadence = cadence::Cadence::new(config.clone());
    measure("cadence_store_only", &mut cadence.register());

    let qsense = qsense::QSense::new(config.clone());
    measure("qsense_store_only", &mut qsense.register());

    let qsbr = qsbr::Qsbr::new(config);
    measure("qsbr_noop", &mut qsbr.register());
}
