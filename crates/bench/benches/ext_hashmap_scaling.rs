//! **Extension E2**: scalability on the lock-free hash map.
//!
//! The paper evaluates QSense on three pointer-chasing ordered sets. Michael's
//! original hash table (an array of the same lock-free lists) is the structure the
//! hazard-pointer methodology was designed around, and it has the *shortest*
//! traversals of all — a handful of nodes per operation — which makes it the
//! worst case for any scheme whose overhead is paid per operation rather than per
//! node (QSBR's batched quiescence) and the best case for per-node-cost schemes.
//! Running the same sweep as Figure 5 on the hash map therefore checks that the
//! paper's ordering (None ≥ QSBR > QSense ≫ HP) is not an artifact of long
//! traversals.

use bench::{fig5_schemes, run_series, thread_counts};
use workload::{report, OpMix, Structure, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::new(Structure::HashMap.default_key_range(), OpMix::updates_50());
    println!(
        "Extension E2: hash map, {} keys, 50% updates, threads = {:?}",
        spec.key_range,
        thread_counts()
    );

    let baseline = run_series(Structure::HashMap, fig5_schemes()[0], spec);
    report::print_series("none (leaky baseline)", &baseline, None);
    for scheme in &fig5_schemes()[1..] {
        let series = run_series(Structure::HashMap, *scheme, spec);
        report::print_series(scheme.name(), &series, Some(&baseline));
    }
}
