//! **Figure 5, top-right**: scalability of memory reclamation on the binary search
//! tree (paper: 2 000 000 keys; default here 200 000 — see DESIGN.md §3 — and the
//! full range with `QSENSE_BENCH_FULL=1`), 50% updates — None, QSBR, QSense, HP.
//!
//! Expected shape (paper): same ordering as the other structures; the BST uses 6
//! hazard pointers and short (logarithmic) traversals.
//!
//! Besides the text table, the run emits **`BENCH_fig5_scaling_bst.json`** in
//! the workspace root so the figure's numbers are tracked across revisions.

use bench::{fig5_schemes, key_range, run_and_emit_series, thread_counts};
use workload::{OpMix, Structure, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::new(key_range(Structure::Bst), OpMix::updates_50());
    println!(
        "Figure 5 (top-right): BST, {} keys, 50% updates, threads = {:?}",
        spec.key_range,
        thread_counts()
    );
    run_and_emit_series(
        Structure::Bst,
        &fig5_schemes(),
        spec,
        "BENCH_fig5_scaling_bst.json",
        "fig5_scaling_bst",
        "cargo bench -p bench --bench fig5_scaling_bst",
    );
}
