//! **Figure 5, top-right**: scalability of memory reclamation on the binary search
//! tree (paper: 2 000 000 keys; default here 200 000 — see DESIGN.md §3 — and the
//! full range with `QSENSE_BENCH_FULL=1`), 50% updates — None, QSBR, QSense, HP.
//!
//! Expected shape (paper): same ordering as the other structures; the BST uses 6
//! hazard pointers and short (logarithmic) traversals.

use bench::{fig5_schemes, key_range, run_series, thread_counts};
use workload::{report, OpMix, Structure, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::new(key_range(Structure::Bst), OpMix::updates_50());
    println!(
        "Figure 5 (top-right): BST, {} keys, 50% updates, threads = {:?}",
        spec.key_range,
        thread_counts()
    );
    let baseline = run_series(Structure::Bst, fig5_schemes()[0], spec);
    report::print_series("none (leaky baseline)", &baseline, None);
    for scheme in &fig5_schemes()[1..] {
        let series = run_series(Structure::Bst, *scheme, spec);
        report::print_series(scheme.name(), &series, Some(&baseline));
    }
}
