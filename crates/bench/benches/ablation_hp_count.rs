//! **Ablation A4** (§7.3's explanation of the skip-list gap): protection cost as a
//! function of `K`, the number of hazard-pointer slots an operation maintains.
//!
//! The paper attributes the larger QSBR-to-QSense gap on the skip list to its
//! hazard-pointer count: "whereas the linked list only uses two hazard pointers per
//! process and the tree uses six, the skip list can use up to 35". This ablation
//! isolates exactly that variable: a synthetic operation protects `K` distinct slots
//! (as a traversal of a `K`-pointer structure would), and the per-operation cost is
//! measured for every scheme. QSBR is flat in `K` (protection is a no-op), the
//! fence-free schemes grow with a small slope (one local store per slot), classic HP
//! grows with a steep slope (one fence per slot), and reference counting grows with
//! the steepest slope (one shared read-modify-write per slot).

use reclaim_core::{Smr, SmrConfig, SmrHandle};
use std::hint::black_box;
use std::time::Instant;

/// Operations per (K, scheme) measurement.
const OPS: u64 = 200_000;

fn measure<S: Smr>(scheme: &std::sync::Arc<S>, k: usize) -> f64 {
    let mut handle = scheme.register();
    // Warm up the handle and the branch predictors.
    for _ in 0..1_000 {
        handle.begin_op();
        handle.protect(0, 0x1000 as *mut u8);
        handle.clear_protections();
        handle.end_op();
    }
    let start = Instant::now();
    for op in 0..OPS {
        handle.begin_op();
        for slot in 0..k {
            // Distinct, non-null fake addresses, as a traversal would publish.
            let ptr = (0x1_0000 + ((op as usize + slot) % 256) * 64) as *mut u8;
            handle.protect(slot, ptr);
            black_box(ptr);
        }
        handle.clear_protections();
        handle.end_op();
    }
    let elapsed = start.elapsed();
    elapsed.as_nanos() as f64 / OPS as f64
}

fn main() {
    println!("Ablation A4: per-operation protection cost vs K (ns/op, {OPS} ops per cell)");
    println!("K values bracket the paper's structures: list = 2, BST = 6, skip list = up to 35");
    println!();
    println!(
        "{:>4}  {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "K", "qsbr", "ebr", "qsense", "cadence", "hp", "rc"
    );

    for k in [2usize, 6, 12, 24, 35] {
        let config = SmrConfig::default()
            .with_hp_per_thread(k)
            .with_rooster_threads(1)
            .with_quiescence_threshold(64);

        let qsbr = qsbr::Qsbr::new(config.clone());
        let ebr = ebr::Ebr::new(config.clone());
        let qsense = qsense::QSense::new(config.clone());
        let cadence = cadence::Cadence::new(config.clone());
        let hp = hazard::Hazard::new(config.clone());
        let rc = refcount::RefCount::new(config);

        println!(
            "{:>4}  {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            k,
            measure(&qsbr, k),
            measure(&ebr, k),
            measure(&qsense, k),
            measure(&cadence, k),
            measure(&hp, k),
            measure(&rc, k),
        );
    }

    println!();
    println!("# qsbr/ebr are flat in K; qsense/cadence grow by one local store per slot;");
    println!("# hp grows by one fence per slot; rc grows by one shared RMW per slot.");
    println!("# This slope difference is why the skip list (large K) shows the paper's");
    println!("# largest QSBR-to-QSense gap and its largest QSense-to-HP win.");
}
