//! **Ablation A4** (§7.3's explanation of the skip-list gap): protection cost as a
//! function of `K`, the number of hazard-pointer slots an operation maintains.
//!
//! The paper attributes the larger QSBR-to-QSense gap on the skip list to its
//! hazard-pointer count: "whereas the linked list only uses two hazard pointers per
//! process and the tree uses six, the skip list can use up to 35". This ablation
//! isolates exactly that variable: a synthetic operation protects `K` distinct slots
//! (as a traversal of a `K`-pointer structure would), and the per-operation cost is
//! measured for every scheme. QSBR is flat in `K` (protection is a no-op), the
//! fence-free schemes grow with a small slope (one local store per slot), classic HP
//! grows with a steep slope (one fence per slot), and reference counting grows with
//! the steepest slope (one shared read-modify-write per slot).
//!
//! Besides the text table, the run emits **`BENCH_ablation_hp_count.json`** in
//! the workspace root (shared `bench::json` envelope): one row per
//! `(scheme, K)` cell.

use bench::json::{self, JsonObject};
use std::hint::black_box;
use std::time::Instant;

use reclaim_core::{Smr, SmrConfig, SmrHandle};

/// Operations per (K, scheme) measurement.
const OPS: u64 = 200_000;

// Sanctioned raw-protocol site: this ablation measures the raw protection
// primitive itself, below the guard layer.
#[allow(clippy::disallowed_methods)]
fn measure<S: Smr>(scheme: &std::sync::Arc<S>, k: usize) -> f64 {
    let mut handle = scheme.register();
    // Warm up the handle and the branch predictors.
    for _ in 0..1_000 {
        handle.begin_op();
        handle.protect(0, 0x1000 as *mut u8);
        handle.clear_protections();
        handle.end_op();
    }
    let start = Instant::now();
    for op in 0..OPS {
        handle.begin_op();
        for slot in 0..k {
            // Distinct, non-null fake addresses, as a traversal would publish.
            let ptr = (0x1_0000 + ((op as usize + slot) % 256) * 64) as *mut u8;
            handle.protect(slot, ptr);
            black_box(ptr);
        }
        handle.clear_protections();
        handle.end_op();
    }
    let elapsed = start.elapsed();
    elapsed.as_nanos() as f64 / OPS as f64
}

fn row(scheme: &str, k: usize, ns: f64) -> JsonObject {
    JsonObject::new()
        .str_field("scheme", scheme)
        .int_field("k", k as u64)
        .int_field("threads", 1)
        .num_field("protect_ns_per_op", ns, 2)
}

fn main() {
    println!("Ablation A4: per-operation protection cost vs K (ns/op, {OPS} ops per cell)");
    println!("K values bracket the paper's structures: list = 2, BST = 6, skip list = up to 35");
    println!();
    println!(
        "{:>4}  {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "K", "qsbr", "ebr", "qsense", "cadence", "hp", "rc"
    );

    let mut rows = Vec::new();
    for k in [2usize, 6, 12, 24, 35] {
        let config = SmrConfig::default()
            .with_hp_per_thread(k)
            .with_rooster_threads(1)
            .with_quiescence_threshold(64);

        let qsbr = qsbr::Qsbr::new(config.clone());
        let ebr = ebr::Ebr::new(config.clone());
        let qsense = qsense::QSense::new(config.clone());
        let cadence = cadence::Cadence::new(config.clone());
        let hp = hazard::Hazard::new(config.clone());
        let rc = refcount::RefCount::new(config);

        let cells = [
            ("qsbr", measure(&qsbr, k)),
            ("ebr", measure(&ebr, k)),
            ("qsense", measure(&qsense, k)),
            ("cadence", measure(&cadence, k)),
            ("hp", measure(&hp, k)),
            ("rc", measure(&rc, k)),
        ];
        println!(
            "{:>4}  {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            k, cells[0].1, cells[1].1, cells[2].1, cells[3].1, cells[4].1, cells[5].1,
        );
        for (scheme, ns) in cells {
            rows.push(row(scheme, k, ns));
        }
    }

    println!();
    println!("# qsbr/ebr are flat in K; qsense/cadence grow by one local store per slot;");
    println!("# hp grows by one fence per slot; rc grows by one shared RMW per slot.");
    println!("# This slope difference is why the skip list (large K) shows the paper's");
    println!("# largest QSBR-to-QSense gap and its largest QSense-to-HP win.");

    let meta = [
        ("ops_per_cell", format!("{OPS}")),
        ("unit", "\"nanoseconds per operation\"".to_string()),
    ];
    let path = json::workspace_file("BENCH_ablation_hp_count.json");
    match json::write_report(
        &path,
        "ablation_hp_count",
        "cargo bench -p bench --bench ablation_hp_count",
        &meta,
        &rows,
    ) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}
