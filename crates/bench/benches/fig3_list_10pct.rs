//! **Figure 3** of the paper: QSense, HP and no reclamation on a linked list of
//! 2 000 elements with a 10% updates workload; throughput as a function of the
//! number of threads.
//!
//! Expected shape (paper): None ≥ QSense ≫ HP, with QSense two to three times the
//! throughput of HP.
//!
//! Besides the text table, the run emits **`BENCH_fig3_list.json`** in the
//! workspace root so the figure's numbers are tracked across revisions alongside
//! `BENCH_overhead.json`.

use bench::{fig3_schemes, run_and_emit_series, thread_counts};
use workload::{Structure, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::fig3_list();
    println!(
        "Figure 3: linked list, {} keys, 10% updates, threads = {:?}",
        spec.key_range,
        thread_counts()
    );
    run_and_emit_series(
        Structure::List,
        &fig3_schemes(),
        spec,
        "BENCH_fig3_list.json",
        "fig3_list_10pct",
        "cargo bench -p bench --bench fig3_list_10pct",
    );
}
