//! **Figure 3** of the paper: QSense, HP and no reclamation on a linked list of
//! 2 000 elements with a 10% updates workload; throughput as a function of the
//! number of threads.
//!
//! Expected shape (paper): None ≥ QSense ≫ HP, with QSense two to three times the
//! throughput of HP.

use bench::{fig3_schemes, run_series, thread_counts};
use workload::{report, Structure, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::fig3_list();
    println!("Figure 3: linked list, {} keys, 10% updates, threads = {:?}", spec.key_range, thread_counts());

    let baseline = run_series(Structure::List, bench::fig3_schemes()[0], spec);
    report::print_series("none (leaky baseline)", &baseline, None);
    for scheme in &fig3_schemes()[1..] {
        let series = run_series(Structure::List, *scheme, spec);
        report::print_series(scheme.name(), &series, Some(&baseline));
    }
}
