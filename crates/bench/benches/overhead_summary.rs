//! **Hot-path overhead summary** — the per-operation cost of the two primitives the
//! paper's design optimizes (§7.3's in-text aggregate claims): `retire`
//! (`free_node_later`) and the operation boundary (`manage_qsense_state`, i.e. the
//! amortized quiescent-state cost), for every scheme, at 1, 4 and 8 threads.
//!
//! Run with a single command from the workspace root:
//!
//! ```text
//! cargo bench -p bench --bench overhead_summary
//! ```
//!
//! Besides the human-readable table on stdout, the run emits a machine-readable
//! **`BENCH_overhead.json`** (path override: `QSENSE_BENCH_OUT`) so the numbers are
//! tracked across revisions. Measurement length per point follows
//! `QSENSE_BENCH_SECONDS` (default 0.3 s). Every point is measured
//! `QSENSE_BENCH_REPEATS` times (default 3); the JSON records the mean (the
//! field the CI gate compares) plus the min/max across repeats, so a noisy
//! runner is distinguishable from a real regression when reading the artifact.
//!
//! Paper context: QSBR ≈ 2.3% average overhead over the leaky baseline, QSense
//! ≈ 29%, HP ≈ 80%. The per-op costs here are the microscopic version of those
//! aggregates: `none` is the floor (allocation + bookkeeping push only), and every
//! scheme's distance from it is pure reclamation overhead.
//!
//! Caveat on the baseline: `none` never frees during a measurement, so at higher
//! thread counts its growing heap slows the *allocator* — reclaiming schemes can
//! then show negative "overhead". Treat multi-thread overhead-vs-none as a
//! conservative bound; the single-thread column is the clean comparison.

use bench::json::{self, JsonObject};
use bench::point_seconds;
use reclaim_core::{retire_box, Smr, SmrConfig, SmrHandle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Thread counts required by the benchmark contract (BENCH_overhead.json shows
/// every scheme at each of these).
const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

/// Upper bound on retires per thread per measurement, so the leaky baseline (which
/// frees nothing until scheme drop) cannot exhaust container memory.
const MAX_RETIRES_PER_THREAD: u64 = 400_000;

/// Check the clock only every this many operations.
const CHUNK: u64 = 1_024;

/// Measurements per point (`QSENSE_BENCH_REPEATS`, default 3): the JSON keeps
/// mean, min and max across them.
fn repeats() -> usize {
    std::env::var("QSENSE_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|r| *r > 0)
        .unwrap_or(3)
}

/// Mean / min / max of one point's repeated measurements.
#[derive(Clone, Copy)]
struct Spread {
    mean: f64,
    min: f64,
    max: f64,
}

impl Spread {
    fn from_samples(samples: &[f64]) -> Self {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self { mean, min, max }
    }
}

#[derive(Clone, Copy)]
enum Mode {
    /// begin_op + retire(Box<u64>) + end_op per iteration.
    Retire,
    /// begin_op + end_op per iteration (the boundary / quiescent-state cost).
    OpBoundary,
}

/// Runs `threads` workers hammering the given primitive for ~`point_seconds()`
/// and returns the mean cost of one iteration in nanoseconds.
fn measure<S: Smr>(scheme: &Arc<S>, threads: usize, mode: Mode) -> f64 {
    let budget = point_seconds();
    let barrier = Barrier::new(threads);
    let total_ops = AtomicU64::new(0);
    let total_nanos = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let scheme = Arc::clone(scheme);
            let barrier = &barrier;
            let total_ops = &total_ops;
            let total_nanos = &total_nanos;
            scope.spawn(move || {
                let mut handle = scheme.register();
                // Warm up: touch the code paths and let bags/scratch buffers reach
                // their steady-state capacity before the clock starts.
                for _ in 0..CHUNK {
                    handle.begin_op();
                    if matches!(mode, Mode::Retire) {
                        let ptr = Box::into_raw(Box::new(0u64));
                        // SAFETY: freshly boxed, never shared, retired once.
                        unsafe { retire_box(&mut handle, ptr) };
                    }
                    handle.end_op();
                }
                barrier.wait();
                let start = Instant::now();
                let mut ops = 0u64;
                loop {
                    for _ in 0..CHUNK {
                        handle.begin_op();
                        if matches!(mode, Mode::Retire) {
                            let ptr = Box::into_raw(Box::new(0u64));
                            // SAFETY: freshly boxed, never shared, retired once.
                            unsafe { retire_box(&mut handle, ptr) };
                        }
                        handle.end_op();
                    }
                    ops += CHUNK;
                    if start.elapsed().as_secs_f64() >= budget
                        || (matches!(mode, Mode::Retire) && ops >= MAX_RETIRES_PER_THREAD)
                    {
                        break;
                    }
                }
                let nanos = start.elapsed().as_nanos() as u64;
                handle.flush();
                total_ops.fetch_add(ops, Ordering::Relaxed);
                total_nanos.fetch_add(nanos, Ordering::Relaxed);
            });
        }
    });
    total_nanos.load(Ordering::Relaxed) as f64 / total_ops.load(Ordering::Relaxed) as f64
}

struct Entry {
    scheme: &'static str,
    threads: usize,
    retire: Spread,
    boundary: Spread,
}

/// Measures one scheme at every thread count, `repeats()` times per point. A
/// fresh scheme instance per measurement keeps the points independent (and lets
/// the leaky baseline release its memory between points).
fn run_scheme<S: Smr>(name: &'static str, make: impl Fn(usize) -> Arc<S>, out: &mut Vec<Entry>) {
    let repeats = repeats();
    for &threads in &THREAD_COUNTS {
        let sample = |mode: Mode| {
            let samples: Vec<f64> = (0..repeats)
                .map(|_| {
                    let scheme = make(threads);
                    measure(&scheme, threads, mode)
                })
                .collect();
            Spread::from_samples(&samples)
        };
        let retire = sample(Mode::Retire);
        let boundary = sample(Mode::OpBoundary);
        println!(
            "{name:<8} {threads:>2} thread(s)   retire {:8.1} ns/op [{:.1}, {:.1}]   op-boundary {:8.1} ns/op [{:.1}, {:.1}]",
            retire.mean, retire.min, retire.max, boundary.mean, boundary.min, boundary.max
        );
        out.push(Entry {
            scheme: name,
            threads,
            retire,
            boundary,
        });
    }
}

fn baseline_ns(entries: &[Entry], threads: usize) -> Option<f64> {
    entries
        .iter()
        .find(|e| e.scheme == "none" && e.threads == threads)
        .map(|e| e.retire.mean)
}

fn write_json(entries: &[Entry], path: &std::path::Path) -> std::io::Result<()> {
    let rows: Vec<JsonObject> = entries
        .iter()
        .map(|e| {
            let overhead = baseline_ns(entries, e.threads)
                .filter(|base| *base > 0.0)
                .map(|base| (e.retire.mean / base - 1.0) * 100.0);
            JsonObject::new()
                .str_field("scheme", e.scheme)
                .int_field("threads", e.threads as u64)
                .num_field("retire_ns_per_op", e.retire.mean, 2)
                .num_field("retire_ns_min", e.retire.min, 2)
                .num_field("retire_ns_max", e.retire.max, 2)
                .num_field("quiescent_state_ns_per_op", e.boundary.mean, 2)
                .num_field("quiescent_state_ns_min", e.boundary.min, 2)
                .num_field("quiescent_state_ns_max", e.boundary.max, 2)
                .opt_num_field("retire_overhead_vs_none_pct", overhead, 1)
        })
        .collect();
    let threads_list = THREAD_COUNTS
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let meta = [
        ("point_seconds", format!("{}", point_seconds())),
        ("repeats", format!("{}", repeats())),
        ("threads", format!("[{threads_list}]")),
        ("unit", "\"nanoseconds per operation\"".to_string()),
    ];
    json::write_report(
        path,
        "overhead_summary",
        "cargo bench -p bench --bench overhead_summary",
        &meta,
        &rows,
    )
}

fn main() {
    println!(
        "Per-op hot-path cost (retire / op-boundary), {}s per point",
        point_seconds()
    );
    // Rooster threads are capped at 1 here: this benchmark measures worker-side
    // per-op cost, not background reclamation throughput.
    let config = |threads: usize| {
        SmrConfig::default()
            .with_max_threads(threads + 2)
            .with_rooster_threads(1)
    };

    // Discarded process warm-up: the first measurement in a fresh process pays
    // one-off costs (page faults, allocator arena growth) that would otherwise be
    // billed entirely to whichever scheme runs first.
    {
        let scheme = reclaim_core::Leaky::new(config(1));
        let _ = measure(&scheme, 1, Mode::Retire);
    }

    let mut entries = Vec::new();
    run_scheme(
        "none",
        |t| reclaim_core::Leaky::new(config(t)),
        &mut entries,
    );
    run_scheme("qsbr", |t| qsbr::Qsbr::new(config(t)), &mut entries);
    run_scheme("ebr", |t| ebr::Ebr::new(config(t)), &mut entries);
    // HE runs the adaptive era policy so the CI gate covers the pacer's hot
    // path (the striped limbo report per scan + the interval load per alloc),
    // not just the static constant it replaces as the bench default.
    run_scheme(
        "he",
        |t| he::He::new(config(t).with_era_policy(reclaim_core::EraAdvancePolicy::adaptive())),
        &mut entries,
    );
    run_scheme("hp", |t| hazard::Hazard::new(config(t)), &mut entries);
    run_scheme(
        "cadence",
        |t| cadence::Cadence::new(config(t)),
        &mut entries,
    );
    run_scheme("qsense", |t| qsense::QSense::new(config(t)), &mut entries);
    run_scheme("rc", |t| refcount::RefCount::new(config(t)), &mut entries);

    for &threads in &THREAD_COUNTS {
        if let Some(base) = baseline_ns(&entries, threads) {
            print!("overhead vs none @ {threads} thread(s):");
            for e in entries.iter().filter(|e| e.threads == threads) {
                if e.scheme != "none" && base > 0.0 {
                    print!(
                        "  {} {:+.1}%",
                        e.scheme,
                        (e.retire.mean / base - 1.0) * 100.0
                    );
                }
            }
            println!();
        }
    }

    // Default to the workspace root regardless of the bench's working directory
    // (cargo runs benches with CWD = the package directory).
    let path = std::env::var("QSENSE_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| json::workspace_file("BENCH_overhead.json"));
    match write_json(&entries, &path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}
