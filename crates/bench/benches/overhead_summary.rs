//! **In-text aggregate claims of §7.3**: average overhead over the leaky baseline
//! across the three data structures, and the QSense-vs-HP ratio.
//!
//! Paper-reported values: QSBR ≈ 2.3% average overhead, QSense ≈ 29%, HP ≈ 80%;
//! QSense outperforms HP by 2–3×; Cadence (the fallback path alone) outperforms HP
//! by ≈3×.

use bench::{key_range, run_point, thread_counts};
use workload::{report, OpMix, RunResult, SchemeKind, Structure, WorkloadSpec};

fn collect(scheme: SchemeKind, threads: usize) -> Vec<RunResult> {
    [Structure::List, Structure::SkipList, Structure::Bst]
        .into_iter()
        .map(|structure| {
            let spec = WorkloadSpec::new(key_range(structure), OpMix::updates_50());
            run_point(structure, scheme, threads, spec)
        })
        .collect()
}

fn main() {
    let threads = *thread_counts().last().unwrap_or(&4);
    println!(
        "Overhead summary across list / skip list / BST, 50% updates, {} threads",
        threads
    );
    let baseline = collect(SchemeKind::None, threads);
    report::print_series("none (leaky baseline)", &baseline, None);

    let mut qsense_mops = 0.0;
    let mut hp_mops = 0.0;
    for scheme in [
        SchemeKind::Qsbr,
        SchemeKind::QSense,
        SchemeKind::Cadence,
        SchemeKind::Hp,
    ] {
        let series = collect(scheme, threads);
        report::print_series(scheme.name(), &series, Some(&baseline));
        let overhead = report::average_overhead_pct(&series, &baseline);
        let mean_mops: f64 =
            series.iter().map(RunResult::mops).sum::<f64>() / series.len() as f64;
        println!(
            "-> {}: average overhead vs none = {:.1}%   (paper: qsbr 2.3%, qsense 29%, hp 80%)",
            scheme.name(),
            overhead
        );
        match scheme {
            SchemeKind::QSense => qsense_mops = mean_mops,
            SchemeKind::Hp => hp_mops = mean_mops,
            _ => {}
        }
    }
    if hp_mops > 0.0 {
        println!(
            "-> qsense / hp throughput ratio = {:.2}x   (paper: 2x-3x)",
            qsense_mops / hp_mops
        );
    }
}
