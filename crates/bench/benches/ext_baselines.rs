//! **Extension E1**: the related-work baselines of §8, measured side by side.
//!
//! The paper's related-work section orders the classic techniques by hot-path cost:
//! reference counting pays an atomic read-modify-write per node visited, hazard
//! pointers pay a fence per node, epoch/quiescence schemes pay (almost) nothing.
//! This benchmark puts every implemented scheme — the paper's four plus the EBR and
//! RC baselines this reproduction adds — on the same linked-list workloads so that
//! the ordering claimed in §8 is directly observable.
//!
//! Expected shape: none ≥ qsbr ≈ ebr > qsense > cadence ≫ hp ≥ rc, with the gap
//! between the left and right halves growing as the read share grows (fences and
//! RMWs hurt read-only traversals most).

use bench::{point_seconds, thread_counts};
use std::sync::Arc;
use std::time::Duration;
use workload::{
    make_set, report, run_experiment, Experiment, OpMix, SchemeKind, Structure, WorkloadSpec,
};

fn run_cell(scheme: SchemeKind, threads: usize, spec: WorkloadSpec) -> workload::RunResult {
    let set = make_set(
        Structure::List,
        scheme,
        workload::default_bench_config(threads + 2),
    );
    run_experiment(&Experiment {
        set: Arc::clone(&set),
        spec,
        threads,
        duration: Duration::from_secs_f64(point_seconds()),
        delay: None,
        sample_interval: None,
        limbo_cap: None,
    })
}

fn main() {
    let threads = *thread_counts().last().unwrap_or(&4);
    println!(
        "Extension E1: every implemented scheme on the linked list ({} keys), {} threads",
        Structure::List.default_key_range(),
        threads
    );

    for (label, mix) in [
        (
            "10% updates (read-mostly, the regime that punishes per-node costs)",
            OpMix::updates_10(),
        ),
        (
            "50% updates (the paper's Figure 5 mix)",
            OpMix::updates_50(),
        ),
    ] {
        report::section(label);
        let spec = WorkloadSpec::new(Structure::List.default_key_range(), mix);
        let baseline = run_cell(SchemeKind::None, threads, spec);
        println!("{}", report::throughput_row(&baseline, None));
        for scheme in SchemeKind::extended() {
            if scheme == SchemeKind::None {
                continue;
            }
            let result = run_cell(scheme, threads, spec);
            println!("{}", report::throughput_row(&result, Some(baseline.mops())));
        }
    }
}
