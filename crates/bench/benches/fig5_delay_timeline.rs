//! **Figure 5, bottom row**: path switching with process delays.
//!
//! 8 worker threads, 50% updates; one thread is delayed for the middle half of every
//! cycle (the paper delays it during seconds 10–20, 30–40, … of a 100-second run).
//! Throughput is sampled over time for QSBR, QSense and HP on each structure.
//!
//! Expected shape (paper): QSBR stops reclaiming at the first delay and eventually
//! runs out of memory (reported here as an `ABORTED_AT` marker when the unreclaimed-
//! node cap is hit); QSense keeps running, dipping to Cadence-level throughput during
//! delays and recovering to QSBR-level afterwards; HP runs throughout at roughly a
//! third of QSense's fallback throughput.

use bench::{delay_run_seconds, delay_schemes, full_scale, run_delay_timeline, write_delay_json};
use workload::{report, Structure};

fn main() {
    let threads = if full_scale() { 8 } else { 4 };
    println!(
        "Figure 5 (bottom row): delay timelines, {} threads, {}s per series, one thread delayed half of every cycle",
        threads,
        delay_run_seconds()
    );
    for (structure, file_name) in [
        (Structure::List, "BENCH_fig5_delay_list.json"),
        (Structure::SkipList, "BENCH_fig5_delay_skiplist.json"),
        (Structure::Bst, "BENCH_fig5_delay_bst.json"),
    ] {
        report::section(&format!("{} timelines", structure.name()));
        let mut results = Vec::new();
        for scheme in delay_schemes() {
            let result = run_delay_timeline(structure, scheme, threads);
            report::print_timeline(&result);
            println!(
                "# summary {}: {:.3} Mops/s overall, fallback switches = {}, fast-path switches = {}",
                result.scheme,
                result.mops(),
                result.stats.fallback_switches,
                result.stats.fast_path_switches
            );
            results.push(result);
        }
        write_delay_json(
            file_name,
            "fig5_delay_timeline",
            "cargo bench -p bench --bench fig5_delay_timeline",
            structure,
            threads,
            &results,
        );
    }
}
