//! **Robustness matrix** — every scheme against every injected fault, under a
//! byte-accounted limbo budget, with the budget governor's verdict per cell.
//!
//! Run with a single command from the workspace root:
//!
//! ```text
//! cargo bench -p bench --bench robustness_matrix
//! ```
//!
//! Each cell runs the deterministic seeded fault scenario from
//! `workload::faults` (stalled reader, silent thread, leaked handle, random
//! delays) and records the peak in-limbo byte count plus the escalation
//! counters ([`reclaim_core::BudgetVerdict`]): forced scans, pacer boosts,
//! fallback trips, backpressure events, and total time spent over budget.
//!
//! The budget defaults to 128 KiB — two fault episodes' worth of retirements —
//! and can be overridden with `QSENSE_BENCH_LIMBO_BUDGET` (bytes). A cell is
//! reported *bounded* when its peak stays within `HEADROOM`× the budget: the
//! governor only escalates **after** the estimate crosses the budget, so an
//! enforcing scheme legitimately peaks slightly above it; what distinguishes a
//! robust scheme from QSBR/EBR under a stalled reader is staying within small
//! constant headroom rather than growing with the total retirement count.
//!
//! Besides the stdout table, the run emits **`BENCH_robustness_matrix.json`**
//! (path override: `QSENSE_BENCH_ROBUSTNESS_OUT`) so the robustness claims are
//! tracked across revisions; the CI `robustness-smoke` job uploads it and the
//! `tests/robustness_bounds.rs` suite turns the same cells into hard verdicts.

use bench::json::{self, JsonObject};
use workload::{default_fault_config, run_fault_for, FaultKind, FaultPlan, SchemeKind};

/// A cell counts as bounded while its peak stays within this multiple of the
/// budget (enforcement engages only after the crossing, so exact `<= budget`
/// would flag every enforcing scheme).
const HEADROOM: u64 = 4;

/// Default byte budget: two fault episodes' worth of payload bytes.
fn default_budget() -> usize {
    2 * FaultPlan::new(FaultKind::StalledReader).episode_bytes()
}

fn limbo_budget() -> usize {
    std::env::var("QSENSE_BENCH_LIMBO_BUDGET")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|b| *b > 0)
        .unwrap_or_else(default_budget)
}

fn main() {
    let budget = limbo_budget();
    println!(
        "Robustness matrix: {} schemes x {} faults, limbo budget {:.0} KiB (bounded = peak <= {HEADROOM}x budget)",
        SchemeKind::extended().len(),
        FaultKind::all().len(),
        budget as f64 / 1024.0
    );
    println!(
        "{:<8} {:<15} {:>12} {:>12} {:>10} {:>12} {:>8}",
        "scheme", "fault", "peak KiB", "retired", "esc.", "over (ms)", "bounded"
    );

    let mut rows = Vec::new();
    for scheme in SchemeKind::extended() {
        for fault in FaultKind::all() {
            let plan = FaultPlan::new(fault);
            let result = run_fault_for(scheme, default_fault_config(Some(budget)), &plan);
            let verdict = result.verdict.unwrap_or_default();
            let bounded = result.peak_limbo_bytes <= HEADROOM * budget as u64;
            println!(
                "{:<8} {:<15} {:>12.1} {:>12} {:>10} {:>12.2} {:>8}",
                result.scheme,
                fault.name(),
                result.peak_limbo_bytes as f64 / 1024.0,
                result.total_retired,
                verdict.escalations(),
                verdict.time_over_budget.as_secs_f64() * 1e3,
                if bounded { "yes" } else { "no" },
            );
            rows.push(
                JsonObject::new()
                    .str_field("scheme", result.scheme)
                    .str_field("fault", fault.name())
                    .int_field("total_retired", result.total_retired)
                    .int_field("peak_limbo_bytes", result.peak_limbo_bytes)
                    .int_field("end_limbo_nodes", result.end_limbo)
                    .int_field("end_limbo_bytes", result.end_limbo_bytes)
                    .int_field("forced_scans", verdict.forced_scans)
                    .int_field("pacer_boosts", verdict.pacer_boosts)
                    .int_field("fallback_trips", verdict.fallback_trips)
                    .int_field("backpressure_events", verdict.backpressure_events)
                    .num_field(
                        "time_over_budget_ms",
                        verdict.time_over_budget.as_secs_f64() * 1e3,
                        2,
                    )
                    .num_field(
                        "peak_over_budget_ratio",
                        result.peak_limbo_bytes as f64 / budget as f64,
                        3,
                    )
                    .str_field("bounded", if bounded { "yes" } else { "no" }),
            );
        }
    }

    let plan = FaultPlan::new(FaultKind::StalledReader);
    let meta = [
        ("limbo_budget_bytes", format!("{budget}")),
        ("bounded_headroom", format!("{HEADROOM}")),
        ("payload_bytes", format!("{}", workload::PAYLOAD_BYTES)),
        ("episodes", format!("{}", plan.episodes)),
        ("burst", format!("{}", plan.burst)),
        ("seed", format!("{}", plan.seed)),
        (
            "unit",
            "\"bytes / counts per (scheme, fault) cell\"".to_string(),
        ),
    ];
    let path = std::env::var("QSENSE_BENCH_ROBUSTNESS_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| json::workspace_file("BENCH_robustness_matrix.json"));
    match json::write_report(
        &path,
        "robustness_matrix",
        "cargo bench -p bench --bench robustness_matrix",
        &meta,
        &rows,
    ) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}
