//! **Ablation A5** (§5.1): the scan threshold `R`.
//!
//! `R` is the number of retired nodes a thread accumulates before it runs a
//! hazard-pointer scan (HP, Cadence, and QSense's fallback path). The paper's
//! liveness bound (Property 2) is `N·(K + T + R)` retired nodes, so `R` trades scan
//! frequency (amortized CPU cost) against the size of the unreclaimed tail. The
//! sweep measures both sides of the trade for classic HP and for Cadence.
//!
//! Besides the text table, the run emits **`BENCH_ablation_scan_threshold.json`**
//! in the workspace root (shared `bench::json` envelope): one row per
//! `(scheme, R)` sweep point.

use bench::json::{self, JsonObject};
use bench::point_seconds;
use std::sync::Arc;
use std::time::Duration;
use workload::{
    make_set, report, run_experiment, Experiment, OpMix, RunResult, SchemeKind, Structure,
    WorkloadSpec,
};

fn row(r_value: usize, result: &RunResult) -> JsonObject {
    JsonObject::new()
        .str_field("scheme", &result.scheme)
        .str_field("structure", &result.structure)
        .str_field("parameter", "R")
        .int_field("value", r_value as u64)
        .int_field("threads", result.threads as u64)
        .num_field("mops_per_sec", result.mops(), 4)
        .int_field("scans", result.stats.scans)
        .int_field("freed", result.stats.freed)
        .int_field("in_limbo_at_end", result.stats.in_limbo())
}

fn main() {
    let threads = 4;
    let spec = WorkloadSpec::new(Structure::List.default_key_range(), OpMix::updates_50());
    println!("Ablation A5: scan threshold R, linked list, {threads} threads, 50% updates");

    let mut rows = Vec::new();
    for scheme in [SchemeKind::Hp, SchemeKind::Cadence, SchemeKind::QSense] {
        report::section(&format!("scheme = {}", scheme.name()));
        for r in [16usize, 64, 256, 1024] {
            let config = workload::default_bench_config(threads + 2).with_scan_threshold(r);
            let set = make_set(Structure::List, scheme, config);
            let result = run_experiment(&Experiment {
                set: Arc::clone(&set),
                spec,
                threads,
                duration: Duration::from_secs_f64(point_seconds()),
                delay: None,
                sample_interval: None,
                limbo_cap: None,
            });
            println!(
                "R = {:>5}   {:>9.3} Mops/s   scans = {:>7}   freed = {:>9}   in-limbo = {:>7}",
                r,
                result.mops(),
                result.stats.scans,
                result.stats.freed,
                result.stats.in_limbo()
            );
            rows.push(row(r, &result));
        }
    }

    println!();
    println!("# Larger R amortizes scan cost over more retires but lengthens the unreclaimed");
    println!("# tail, exactly as Property 2's N*(K + T + R) bound predicts.");

    let meta = [
        ("point_seconds", format!("{}", point_seconds())),
        ("threads", format!("{threads}")),
        ("structure", "\"linked-list\"".to_string()),
        ("unit", "\"million operations per second\"".to_string()),
    ];
    let path = json::workspace_file("BENCH_ablation_scan_threshold.json");
    match json::write_report(
        &path,
        "ablation_scan_threshold",
        "cargo bench -p bench --bench ablation_scan_threshold",
        &meta,
        &rows,
    ) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}
