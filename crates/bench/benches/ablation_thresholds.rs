//! **Ablation A2** (§3.1 / §5.2): QSense's quiescence threshold `Q` and fallback
//! threshold `C`.
//!
//! `Q` controls how many operations are batched per quiescent state (larger `Q` =
//! less bookkeeping but coarser reclamation); `C` controls how much unreclaimed
//! memory a delayed thread may cause before QSense abandons the fast path. The sweep
//! reports throughput, limbo tail and the number of path switches.
//!
//! Besides the text table, the run emits **`BENCH_ablation.json`** in the
//! workspace root (same envelope as `BENCH_overhead.json`): one row per sweep
//! point, keyed by the swept parameter (`"Q"` or `"C"`) and its value.

use bench::json::{self, JsonObject};
use std::sync::Arc;
use std::time::Duration;
use workload::{
    make_set, report, run_experiment, DelaySchedule, Experiment, OpMix, RunResult, SchemeKind,
    Structure, WorkloadSpec,
};

/// One sweep point, flattened for the JSON report.
fn row(parameter: &str, value: usize, result: &RunResult) -> JsonObject {
    JsonObject::new()
        .str_field("scheme", &result.scheme)
        .str_field("structure", &result.structure)
        .str_field("parameter", parameter)
        .int_field("value", value as u64)
        .int_field("threads", result.threads as u64)
        .num_field("mops_per_sec", result.mops(), 4)
        .int_field("quiescent_states", result.stats.quiescent_states)
        .int_field("fallback_switches", result.stats.fallback_switches)
        .int_field("fast_path_switches", result.stats.fast_path_switches)
        .int_field("in_limbo_at_end", result.stats.in_limbo())
}

fn main() {
    let threads = 4;
    let spec = WorkloadSpec::new(Structure::List.default_key_range(), OpMix::updates_50());
    let mut rows = Vec::new();

    println!("Ablation A2: QSense thresholds, linked list, {threads} threads, 50% updates");
    report::section("quiescence threshold Q -> throughput (no delays)");
    for q in [1_usize, 16, 64, 256, 1024] {
        let config = workload::default_bench_config(threads + 2).with_quiescence_threshold(q);
        let set = make_set(Structure::List, SchemeKind::QSense, config);
        let experiment = Experiment {
            set: Arc::clone(&set),
            spec,
            threads,
            duration: Duration::from_secs_f64(bench::point_seconds()),
            delay: None,
            sample_interval: None,
            limbo_cap: None,
        };
        let result = run_experiment(&experiment);
        println!(
            "Q = {:>5}   {:>9.3} Mops/s   quiescent states = {:>8}   in-limbo = {:>7}",
            q,
            result.mops(),
            result.stats.quiescent_states,
            result.stats.in_limbo()
        );
        rows.push(row("Q", q, &result));
    }

    report::section("fallback threshold C -> switches under periodic delays");
    for c in [256_usize, 1024, 8192, 65536] {
        let config = workload::default_bench_config(threads + 2).with_fallback_threshold(c);
        let set = make_set(Structure::List, SchemeKind::QSense, config);
        let run_secs = (bench::point_seconds() * 4.0).max(1.0);
        let experiment = Experiment {
            set: Arc::clone(&set),
            spec,
            threads,
            duration: Duration::from_secs_f64(run_secs),
            delay: Some(DelaySchedule::paper_scaled(run_secs / 100.0)),
            sample_interval: None,
            limbo_cap: None,
        };
        let result = run_experiment(&experiment);
        println!(
            "C = {:>6}   {:>9.3} Mops/s   fallback switches = {:>3}   fast-path switches = {:>3}   in-limbo = {:>8}",
            c,
            result.mops(),
            result.stats.fallback_switches,
            result.stats.fast_path_switches,
            result.stats.in_limbo()
        );
        rows.push(row("C", c, &result));
    }

    let meta = [
        ("point_seconds", format!("{}", bench::point_seconds())),
        ("threads", format!("{threads}")),
        ("structure", "\"linked-list\"".to_string()),
        ("unit", "\"million operations per second\"".to_string()),
    ];
    let path = json::workspace_file("BENCH_ablation.json");
    match json::write_report(
        &path,
        "ablation_thresholds",
        "cargo bench -p bench --bench ablation_thresholds",
        &meta,
        &rows,
    ) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}
