//! **Ablation A2** (§3.1 / §5.2): QSense's quiescence threshold `Q` and fallback
//! threshold `C`.
//!
//! `Q` controls how many operations are batched per quiescent state (larger `Q` =
//! less bookkeeping but coarser reclamation); `C` controls how much unreclaimed
//! memory a delayed thread may cause before QSense abandons the fast path. The sweep
//! reports throughput, limbo tail and the number of path switches.

use std::sync::Arc;
use std::time::Duration;
use workload::{
    make_set, report, run_experiment, DelaySchedule, Experiment, OpMix, SchemeKind, Structure,
    WorkloadSpec,
};

fn main() {
    let threads = 4;
    let spec = WorkloadSpec::new(Structure::List.default_key_range(), OpMix::updates_50());

    println!("Ablation A2: QSense thresholds, linked list, {threads} threads, 50% updates");
    report::section("quiescence threshold Q -> throughput (no delays)");
    for q in [1_usize, 16, 64, 256, 1024] {
        let config = workload::default_bench_config(threads + 2).with_quiescence_threshold(q);
        let set = make_set(Structure::List, SchemeKind::QSense, config);
        let experiment = Experiment {
            set: Arc::clone(&set),
            spec,
            threads,
            duration: Duration::from_secs_f64(bench::point_seconds()),
            delay: None,
            sample_interval: None,
            limbo_cap: None,
        };
        let result = run_experiment(&experiment);
        println!(
            "Q = {:>5}   {:>9.3} Mops/s   quiescent states = {:>8}   in-limbo = {:>7}",
            q,
            result.mops(),
            result.stats.quiescent_states,
            result.stats.in_limbo()
        );
    }

    report::section("fallback threshold C -> switches under periodic delays");
    for c in [256_usize, 1024, 8192, 65536] {
        let config = workload::default_bench_config(threads + 2).with_fallback_threshold(c);
        let set = make_set(Structure::List, SchemeKind::QSense, config);
        let run_secs = (bench::point_seconds() * 4.0).max(1.0);
        let experiment = Experiment {
            set: Arc::clone(&set),
            spec,
            threads,
            duration: Duration::from_secs_f64(run_secs),
            delay: Some(DelaySchedule::paper_scaled(run_secs / 100.0)),
            sample_interval: None,
            limbo_cap: None,
        };
        let result = run_experiment(&experiment);
        println!(
            "C = {:>6}   {:>9.3} Mops/s   fallback switches = {:>3}   fast-path switches = {:>3}   in-limbo = {:>8}",
            c,
            result.mops(),
            result.stats.fallback_switches,
            result.stats.fast_path_switches,
            result.stats.in_limbo()
        );
    }
}
