//! **Ablation A1** (design choice of §5.1): the Cadence rooster sleep interval `T`.
//!
//! Deferred reclamation may only free nodes older than `T + ε`, so a larger `T`
//! trades a longer memory tail (more nodes parked in limbo) for fewer rooster
//! wake-ups. This sweep runs the stand-alone Cadence scheme on the linked list with
//! several values of `T` and reports throughput and the retired-but-unreclaimed node
//! count at the end of the run.
//!
//! Besides the text table, the run emits **`BENCH_ablation_rooster.json`** in
//! the workspace root (shared `bench::json` envelope): one row per sweep point,
//! keyed by the swept parameter (`"T_ms"`) and its value.

use bench::json::{self, JsonObject};
use std::sync::Arc;
use std::time::Duration;
use workload::{
    make_set, report, run_experiment, Experiment, OpMix, RunResult, SchemeKind, Structure,
    WorkloadSpec,
};

fn row(interval_ms: u64, result: &RunResult) -> JsonObject {
    JsonObject::new()
        .str_field("scheme", &result.scheme)
        .str_field("structure", &result.structure)
        .str_field("parameter", "T_ms")
        .int_field("value", interval_ms)
        .int_field("threads", result.threads as u64)
        .num_field("mops_per_sec", result.mops(), 4)
        .int_field("scans", result.stats.scans)
        .int_field("in_limbo_at_end", result.stats.in_limbo())
}

fn main() {
    let threads = 4;
    let spec = WorkloadSpec::new(Structure::List.default_key_range(), OpMix::updates_50());
    println!(
        "Ablation A1: Cadence rooster interval sweep, linked list, {threads} threads, 50% updates"
    );
    report::section("rooster interval T -> throughput / unreclaimed tail");
    let mut rows = Vec::new();
    for interval_ms in [1_u64, 5, 20, 50, 100] {
        let config = workload::default_bench_config(threads + 2)
            .with_rooster_interval(Duration::from_millis(interval_ms))
            .with_rooster_epsilon(Duration::from_millis(1));
        let set = make_set(Structure::List, SchemeKind::Cadence, config);
        let experiment = Experiment {
            set: Arc::clone(&set),
            spec,
            threads,
            duration: Duration::from_secs_f64(bench::point_seconds()),
            delay: None,
            sample_interval: None,
            limbo_cap: None,
        };
        let result = run_experiment(&experiment);
        println!(
            "T = {:>4} ms   {:>9.3} Mops/s   in-limbo at end = {:>8}   scans = {}",
            interval_ms,
            result.mops(),
            result.stats.in_limbo(),
            result.stats.scans
        );
        rows.push(row(interval_ms, &result));
    }

    let meta = [
        ("point_seconds", format!("{}", bench::point_seconds())),
        ("threads", format!("{threads}")),
        ("structure", "\"linked-list\"".to_string()),
        ("unit", "\"million operations per second\"".to_string()),
    ];
    let path = json::workspace_file("BENCH_ablation_rooster.json");
    match json::write_report(
        &path,
        "ablation_rooster_interval",
        "cargo bench -p bench --bench ablation_rooster_interval",
        &meta,
        &rows,
    ) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}
