//! **Server soak** — the M:N lease scenario: thousands of short sessions
//! borrowing eight registered handles against a shared skip list.
//!
//! Run with a single command from the workspace root:
//!
//! ```text
//! cargo bench -p bench --bench server_soak
//! ```
//!
//! Each facade scheme (hp, cadence, qsense, he) serves
//! `QSENSE_BENCH_SOAK_SESSIONS` (default 2000) sessions over 8 leased slots
//! from a 64-capacity registry, with twice as many workers as slots so lease
//! contention is real. Reported per scheme: operation and session throughput,
//! the session wall-time percentiles from the telemetry log2 histogram, lease
//! waits, peak in-limbo bytes, and the registry's shard skip/walk counters —
//! the proof that scans dispatch on *occupied shards*, not capacity.
//!
//! Besides the stdout table, the run emits **`BENCH_server_soak.json`** (path
//! override: `QSENSE_BENCH_SOAK_OUT`) so the lease-scaling claim is tracked
//! across revisions; the CI `robustness-smoke` job runs a shortened soak and
//! uploads the fresh report.

use bench::json::{self, JsonObject};
use workload::{run_server_soak, SchemeKind, ServerSoakSpec};

fn sessions() -> usize {
    std::env::var("QSENSE_BENCH_SOAK_SESSIONS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|s| *s > 0)
        .unwrap_or(2_000)
}

fn main() {
    let sessions = sessions();
    let schemes = [
        SchemeKind::Hp,
        SchemeKind::Cadence,
        SchemeKind::QSense,
        SchemeKind::He,
    ];
    let shape = ServerSoakSpec::new(SchemeKind::Hp);
    println!(
        "Server soak: {sessions} sessions x {} ops over {} leased slots, {} workers, {}-slot registry",
        shape.ops_per_session, shape.slots, shape.workers, shape.max_threads,
    );
    println!(
        "{:<8} {:>10} {:>11} {:>10} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "scheme",
        "Mops/s",
        "sessions/s",
        "p50 (us)",
        "p99 (us)",
        "p99.9(us)",
        "waits",
        "peak-limbo B",
        "skips/walks"
    );

    let mut rows = Vec::new();
    for scheme in schemes {
        let spec = ServerSoakSpec {
            sessions,
            ..ServerSoakSpec::new(scheme)
        };
        let result = run_server_soak(&spec);
        println!(
            "{:<8} {:>10.3} {:>11.0} {:>10.1} {:>10.1} {:>10.1} {:>8} {:>12} {:>7}/{}",
            result.scheme,
            result.mops(),
            result.sessions_per_sec(),
            result.session_percentile_us(0.50),
            result.session_percentile_us(0.99),
            result.session_percentile_us(0.999),
            result.lease_waits,
            result.stats.peak_limbo_bytes,
            result.stats.shard_skips,
            result.stats.shard_walks,
        );
        rows.push(
            JsonObject::new()
                .str_field("scheme", result.scheme)
                .int_field("sessions", result.sessions as u64)
                .int_field("workers", result.workers as u64)
                .int_field("slots", result.slots as u64)
                .int_field("total_ops", result.total_ops)
                .num_field("mops", result.mops(), 4)
                .num_field("sessions_per_sec", result.sessions_per_sec(), 1)
                .num_field("session_p50_us", result.session_percentile_us(0.50), 1)
                .num_field("session_p99_us", result.session_percentile_us(0.99), 1)
                .num_field("session_p999_us", result.session_percentile_us(0.999), 1)
                .int_field("lease_waits", result.lease_waits)
                .int_field("peak_limbo_bytes", result.stats.peak_limbo_bytes)
                .int_field("retired", result.stats.retired)
                .int_field("freed", result.stats.freed)
                .int_field("shard_skips", result.stats.shard_skips)
                .int_field("shard_walks", result.stats.shard_walks),
        );
    }

    let meta = [
        ("sessions", format!("{sessions}")),
        ("workers", format!("{}", shape.workers)),
        ("slots", format!("{}", shape.slots)),
        ("ops_per_session", format!("{}", shape.ops_per_session)),
        ("key_range", format!("{}", shape.key_range)),
        ("registry_capacity", format!("{}", shape.max_threads)),
        ("seed", format!("{}", shape.seed)),
        (
            "unit",
            "\"session percentiles are log2-bucket upper bounds (<= 2x), microseconds\""
                .to_string(),
        ),
    ];
    let path = std::env::var("QSENSE_BENCH_SOAK_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| json::workspace_file("BENCH_server_soak.json"));
    match json::write_report(
        &path,
        "server_soak",
        "cargo bench -p bench --bench server_soak",
        &meta,
        &rows,
    ) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}
