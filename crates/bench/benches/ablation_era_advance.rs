//! **Ablation A6**: the era-advance policy of the Hazard-Eras scheme.
//!
//! ROADMAP's long-standing open item: the static `era_advance_interval` trades
//! stalled-reader garbage (up to one interval's worth of allocations shares a
//! stalled reservation's era) against shared `fetch_add` traffic — and the
//! right constant depends on the workload. The adaptive policy
//! (`EraAdvancePolicy::Adaptive`, `reclaim_core::EraPacer`) replaces the
//! constant with a limbo-driven interval. This sweep runs the `stall-churn`
//! scenario (one reader repeatedly stalls mid-operation while a writer
//! burst-allocates and handle churn runs — `workload::stall_churn`) over
//! static intervals bracketing the default against the adaptive policy,
//! measuring the limbo the stalls pin and the per-retire cost.
//!
//! Besides the text table, the run emits **`BENCH_ablation_era_advance.json`**
//! in the workspace root (shared `bench::json` envelope): one row per policy.

use bench::json::{self, JsonObject};
use bench::point_seconds;
use reclaim_core::{EraAdvancePolicy, SmrConfig};
use std::time::Instant;
use workload::{run_stall_churn, StallChurnSpec};

struct PolicyPoint {
    label: String,
    peak_limbo: u64,
    mean_limbo: f64,
    end_limbo: u64,
    total_retired: u64,
    eras_advanced: u64,
    ns_per_retire: f64,
}

fn label_for(policy: EraAdvancePolicy) -> String {
    match policy {
        EraAdvancePolicy::Static(interval) => format!("static:{interval}"),
        EraAdvancePolicy::Adaptive {
            min_interval,
            max_interval,
            limbo_low_water,
        } => format!("adaptive:{min_interval},{max_interval},{limbo_low_water}"),
    }
}

fn run_policy(policy: EraAdvancePolicy, spec: &StallChurnSpec) -> PolicyPoint {
    let config = SmrConfig::default()
        .with_max_threads(4)
        .with_scan_threshold(128)
        .with_rooster_threads(0)
        .with_era_policy(policy);
    let scheme = he::He::new(config);
    let start_era = scheme.current_era();
    let start = Instant::now();
    let result = run_stall_churn(&scheme, spec);
    let elapsed = start.elapsed();
    PolicyPoint {
        label: label_for(policy),
        peak_limbo: result.peak_limbo(),
        mean_limbo: result.mean_limbo(),
        end_limbo: result.end_limbo,
        total_retired: result.total_retired,
        eras_advanced: scheme.current_era() - start_era,
        ns_per_retire: elapsed.as_nanos() as f64 / result.total_retired.max(1) as f64,
    }
}

fn main() {
    // The scenario is operation-count driven; scale the episode count with the
    // configured point budget so the CI smoke run stays short.
    let episodes = ((point_seconds() * 80.0) as usize).clamp(8, 96);
    let spec = StallChurnSpec {
        episodes,
        burst: 256,
        churn_every: 8,
    };
    println!(
        "Ablation A6: era-advance policy, stall-churn scenario, {episodes} episodes x {} retires",
        spec.burst
    );

    // Static intervals bracketing the default (64), plus the adaptive policy
    // spanning the same range.
    let policies = [
        EraAdvancePolicy::Static(8),
        EraAdvancePolicy::Static(64),
        EraAdvancePolicy::Static(512),
        // Low-water below the per-episode pinned count, so the sweep shows
        // the pacer holding the limbo near the mark with a fraction of the
        // era traffic the equivalent static interval needs.
        EraAdvancePolicy::Adaptive {
            min_interval: 8,
            max_interval: 512,
            limbo_low_water: 64,
        },
    ];

    let mut rows = Vec::new();
    for policy in policies {
        let point = run_policy(policy, &spec);
        println!(
            "{:<22} peak limbo = {:>6}   mean = {:>8.1}   end = {:>4}   eras = {:>6}   retire = {:>7.1} ns",
            point.label,
            point.peak_limbo,
            point.mean_limbo,
            point.end_limbo,
            point.eras_advanced,
            point.ns_per_retire
        );
        rows.push(
            JsonObject::new()
                .str_field("scheme", "he")
                .str_field("parameter", "era_policy")
                .str_field("policy", &point.label)
                .int_field("episodes", episodes as u64)
                .int_field("burst", spec.burst as u64)
                .int_field("peak_in_limbo", point.peak_limbo)
                .num_field("mean_in_limbo", point.mean_limbo, 1)
                .int_field("in_limbo_at_end", point.end_limbo)
                .int_field("retired", point.total_retired)
                .int_field("eras_advanced", point.eras_advanced)
                .num_field("retire_ns_per_op", point.ns_per_retire, 2),
        );
    }

    println!();
    println!("# A small static interval bounds stalled-reader garbage tightly but ticks the");
    println!("# era on every few allocations even when idle; a large one is cheap but lets");
    println!("# every stall pin an interval's worth of nodes. The adaptive policy tracks the");
    println!("# limbo estimate: fast ticks only while garbage actually accumulates.");

    let meta = [
        ("point_seconds", format!("{}", point_seconds())),
        ("episodes", format!("{episodes}")),
        ("burst", format!("{}", spec.burst)),
        ("scenario", "\"stall-churn\"".to_string()),
        ("unit", "\"retired nodes in limbo\"".to_string()),
    ];
    let path = json::workspace_file("BENCH_ablation_era_advance.json");
    match json::write_report(
        &path,
        "ablation_era_advance",
        "cargo bench -p bench --bench ablation_era_advance",
        &meta,
        &rows,
    ) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}
