//! **Telemetry-cost ablation** — the price of the observability layer, off and
//! on, for every scheme at 1, 4 and 8 threads.
//!
//! Run with a single command from the workspace root:
//!
//! ```text
//! cargo bench -p bench --bench ablation_telemetry
//! ```
//!
//! Each measured iteration is the full guard-shaped record bracket: the sampled
//! op stamp (`telemetry_op_begin`/`telemetry_op_end`, what `Guard` calls),
//! `begin_op`, one `retire` (which stamps the retire tick), and `end_op` — so
//! one loop pass pays every per-operation record site the telemetry layer adds,
//! plus its share of the scan-side sites (observer creation, per-free delay
//! records, scan-duration stamp) whenever the scan threshold fires.
//!
//! Two claims are quantified, per (scheme, threads) point:
//!
//! * **Disabled path** (`retire_ns_off`): telemetry compiled in but switched
//!   off — every record site reduces to one relaxed load of the `enabled` flag
//!   and a branch. These numbers are directly comparable to
//!   `BENCH_overhead.json`'s retire column (same loop shape), and the CI
//!   overhead gate keeps them honest: the disabled-path cost is baked into
//!   every scheme the gate measures.
//! * **Enabled path** (`retire_ns_on`, `telemetry_overhead_pct`): histograms
//!   live at the default 1-in-128 op sampling rate. The per-retire additions
//!   are the amortised tick stamp (a cached `u32`, clock re-read every 16
//!   retires) and — because every node retired here is eventually freed — one
//!   histogram `fetch_add` per free for the delay record. Together that is
//!   ~10 ns per op, which reads as 10–20% against this deliberately worst-case
//!   ~100 ns retire-only loop but is under 1% on µs-scale data-structure ops
//!   (the CLI reports identical Mops/s with and without `--telemetry`).
//!
//! Read the multi-thread points against the machine's core count: when threads
//! outnumber cores the loop measures time-slicing, not parallel cost, and the
//! off/on delta is scheduling noise — the per-point `[min, max]` band is the
//! tell. The 1-thread rows are the trustworthy per-site cost figures.
//!
//! The JSON lands in **`BENCH_ablation_telemetry.json`** (path override:
//! `QSENSE_BENCH_TELEMETRY_OUT`) through the shared `bench::json` envelope.

use bench::json::{self, JsonObject};
use bench::point_seconds;
use reclaim_core::{retire_box, Smr, SmrConfig, SmrHandle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Thread counts required by the benchmark contract.
const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

/// Upper bound on retires per thread per measurement, so a slow point cannot
/// exhaust container memory before its clock runs out.
const MAX_RETIRES_PER_THREAD: u64 = 400_000;

/// Check the clock only every this many operations.
const CHUNK: u64 = 1_024;

/// Measurements per point (`QSENSE_BENCH_REPEATS`, default 3).
fn repeats() -> usize {
    std::env::var("QSENSE_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|r| *r > 0)
        .unwrap_or(3)
}

/// Mean / min / max of one point's repeated measurements.
#[derive(Clone, Copy)]
struct Spread {
    mean: f64,
    min: f64,
    max: f64,
}

impl Spread {
    fn from_samples(samples: &[f64]) -> Self {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self { mean, min, max }
    }
}

/// Runs `threads` workers through the guard-shaped record bracket for
/// ~`point_seconds()` and returns the mean cost of one iteration in
/// nanoseconds.
fn measure<S: Smr>(scheme: &Arc<S>, threads: usize) -> f64 {
    let budget = point_seconds();
    let barrier = Barrier::new(threads);
    let total_ops = AtomicU64::new(0);
    let total_nanos = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let scheme = Arc::clone(scheme);
            let barrier = &barrier;
            let total_ops = &total_ops;
            let total_nanos = &total_nanos;
            scope.spawn(move || {
                let mut handle = scheme.register();
                let bracket = |handle: &mut S::Handle| {
                    let started = handle.telemetry_op_begin();
                    handle.begin_op();
                    let ptr = Box::into_raw(Box::new(0u64));
                    // SAFETY: freshly boxed, never shared, retired once.
                    unsafe { retire_box(handle, ptr) };
                    handle.end_op();
                    if let Some(started) = started {
                        handle.telemetry_op_end(started);
                    }
                };
                // Warm up: touch the code paths and let bags/scratch buffers
                // reach their steady-state capacity before the clock starts.
                for _ in 0..CHUNK {
                    bracket(&mut handle);
                }
                barrier.wait();
                let start = Instant::now();
                let mut ops = 0u64;
                loop {
                    for _ in 0..CHUNK {
                        bracket(&mut handle);
                    }
                    ops += CHUNK;
                    if start.elapsed().as_secs_f64() >= budget || ops >= MAX_RETIRES_PER_THREAD {
                        break;
                    }
                }
                let nanos = start.elapsed().as_nanos() as u64;
                handle.flush();
                total_ops.fetch_add(ops, Ordering::Relaxed);
                total_nanos.fetch_add(nanos, Ordering::Relaxed);
            });
        }
    });
    total_nanos.load(Ordering::Relaxed) as f64 / total_ops.load(Ordering::Relaxed) as f64
}

struct Entry {
    scheme: &'static str,
    threads: usize,
    off: Spread,
    on: Spread,
}

impl Entry {
    /// `(on / off − 1) · 100`, the figure the report quotes.
    fn overhead_pct(&self) -> f64 {
        if self.off.mean > 0.0 {
            (self.on.mean / self.off.mean - 1.0) * 100.0
        } else {
            0.0
        }
    }
}

/// Measures one scheme at every thread count, telemetry off then on,
/// `repeats()` times per point. A fresh scheme instance per measurement keeps
/// the points independent.
fn run_scheme<S: Smr>(
    name: &'static str,
    make: impl Fn(usize, bool) -> Arc<S>,
    out: &mut Vec<Entry>,
) {
    let repeats = repeats();
    for &threads in &THREAD_COUNTS {
        let sample = |telemetry: bool| {
            let samples: Vec<f64> = (0..repeats)
                .map(|_| {
                    let scheme = make(threads, telemetry);
                    measure(&scheme, threads)
                })
                .collect();
            Spread::from_samples(&samples)
        };
        let off = sample(false);
        let on = sample(true);
        let entry = Entry {
            scheme: name,
            threads,
            off,
            on,
        };
        println!(
            "{name:<8} {threads:>2} thread(s)   off {:8.1} ns/op [{:.1}, {:.1}]   on {:8.1} ns/op [{:.1}, {:.1}]   overhead {:+.1}%",
            off.mean,
            off.min,
            off.max,
            on.mean,
            on.min,
            on.max,
            entry.overhead_pct(),
        );
        out.push(entry);
    }
}

fn write_json(entries: &[Entry], path: &std::path::Path) -> std::io::Result<()> {
    let rows: Vec<JsonObject> = entries
        .iter()
        .map(|e| {
            JsonObject::new()
                .str_field("scheme", e.scheme)
                .int_field("threads", e.threads as u64)
                .num_field("retire_ns_off", e.off.mean, 2)
                .num_field("retire_ns_off_min", e.off.min, 2)
                .num_field("retire_ns_off_max", e.off.max, 2)
                .num_field("retire_ns_on", e.on.mean, 2)
                .num_field("retire_ns_on_min", e.on.min, 2)
                .num_field("retire_ns_on_max", e.on.max, 2)
                .num_field("telemetry_overhead_pct", e.overhead_pct(), 1)
        })
        .collect();
    let threads_list = THREAD_COUNTS
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let meta = [
        ("point_seconds", format!("{}", point_seconds())),
        ("repeats", format!("{}", repeats())),
        ("threads", format!("[{threads_list}]")),
        (
            "sampling",
            "\"enabled runs use the default 1-in-128 op sampling\"".to_string(),
        ),
        ("unit", "\"nanoseconds per operation\"".to_string()),
    ];
    json::write_report(
        path,
        "ablation_telemetry",
        "cargo bench -p bench --bench ablation_telemetry",
        &meta,
        &rows,
    )
}

fn main() {
    println!(
        "Telemetry cost ablation (guard bracket + retire, off vs on), {}s per point",
        point_seconds()
    );
    let config = |threads: usize, telemetry: bool| {
        SmrConfig::default()
            .with_max_threads(threads + 2)
            .with_rooster_threads(1)
            .with_telemetry(telemetry)
    };

    // Discarded process warm-up: the first measurement in a fresh process pays
    // one-off costs (page faults, allocator arena growth) that would otherwise
    // be billed entirely to whichever scheme runs first.
    {
        let scheme = reclaim_core::Leaky::new(config(1, false));
        let _ = measure(&scheme, 1);
    }

    let mut entries = Vec::new();
    run_scheme(
        "none",
        |t, tele| reclaim_core::Leaky::new(config(t, tele)),
        &mut entries,
    );
    run_scheme(
        "qsbr",
        |t, tele| qsbr::Qsbr::new(config(t, tele)),
        &mut entries,
    );
    run_scheme(
        "ebr",
        |t, tele| ebr::Ebr::new(config(t, tele)),
        &mut entries,
    );
    run_scheme("he", |t, tele| he::He::new(config(t, tele)), &mut entries);
    run_scheme(
        "hp",
        |t, tele| hazard::Hazard::new(config(t, tele)),
        &mut entries,
    );
    run_scheme(
        "cadence",
        |t, tele| cadence::Cadence::new(config(t, tele)),
        &mut entries,
    );
    run_scheme(
        "qsense",
        |t, tele| qsense::QSense::new(config(t, tele)),
        &mut entries,
    );
    run_scheme(
        "rc",
        |t, tele| refcount::RefCount::new(config(t, tele)),
        &mut entries,
    );

    let path = std::env::var("QSENSE_BENCH_TELEMETRY_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| json::workspace_file("BENCH_ablation_telemetry.json"));
    match write_json(&entries, &path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}
