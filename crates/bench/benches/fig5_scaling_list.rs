//! **Figure 5, top-left**: scalability of memory reclamation on the linked list
//! (2 000 keys, 50% updates) — None, QSBR, QSense, HP; throughput vs threads.
//!
//! Expected shape (paper): QSBR within a few percent of None, QSense ~29% below
//! None, HP far below everything (≈80% overhead).

use bench::{fig5_schemes, run_series, thread_counts};
use workload::{report, Structure, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::fig5_scaling(Structure::List);
    println!(
        "Figure 5 (top-left): linked list, {} keys, 50% updates, threads = {:?}",
        spec.key_range,
        thread_counts()
    );
    let baseline = run_series(Structure::List, fig5_schemes()[0], spec);
    report::print_series("none (leaky baseline)", &baseline, None);
    for scheme in &fig5_schemes()[1..] {
        let series = run_series(Structure::List, *scheme, spec);
        report::print_series(scheme.name(), &series, Some(&baseline));
    }
}
