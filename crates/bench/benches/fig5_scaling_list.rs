//! **Figure 5, top-left**: scalability of memory reclamation on the linked list
//! (2 000 keys, 50% updates) — None, QSBR, QSense, HP; throughput vs threads.
//!
//! Expected shape (paper): QSBR within a few percent of None, QSense ~29% below
//! None, HP far below everything (≈80% overhead).
//!
//! Besides the text table, the run emits **`BENCH_fig5_scaling_list.json`** in
//! the workspace root so the figure's numbers are tracked across revisions.

use bench::{fig5_schemes, run_and_emit_series, thread_counts};
use workload::{Structure, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::fig5_scaling(Structure::List);
    println!(
        "Figure 5 (top-left): linked list, {} keys, 50% updates, threads = {:?}",
        spec.key_range,
        thread_counts()
    );
    run_and_emit_series(
        Structure::List,
        &fig5_schemes(),
        spec,
        "BENCH_fig5_scaling_list.json",
        "fig5_scaling_list",
        "cargo bench -p bench --bench fig5_scaling_list",
    );
}
