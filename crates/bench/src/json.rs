//! Minimal JSON emission and parsing for the `BENCH_*.json` reports.
//!
//! The offline build has no `serde`, and the reports are flat (one object with
//! scalar metadata plus an array of flat result rows), so this module hand-rolls
//! exactly that shape. Every benchmark that emits a JSON report goes through
//! [`write_report`] so the envelope (`bench`, `command`, metadata, `results`)
//! stays uniform across `BENCH_overhead.json`, `BENCH_fig3_list.json` and the
//! `BENCH_fig5_scaling_*.json` family — and so the CI regression gate
//! ([`parse_rows`] / `compare_overhead` in the `compare_overhead` binary) can
//! parse any of them with one scanner.

use std::io;
use std::path::{Path, PathBuf};

/// Builder for one flat JSON object (a result row), preserving field order.
#[derive(Default)]
pub struct JsonObject {
    parts: Vec<String>,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field (the value is assumed not to need escaping — scheme
    /// and structure names are ASCII identifiers).
    pub fn str_field(mut self, key: &str, value: &str) -> Self {
        self.parts.push(format!("\"{key}\": \"{value}\""));
        self
    }

    /// Adds an integer field.
    pub fn int_field(mut self, key: &str, value: u64) -> Self {
        self.parts.push(format!("\"{key}\": {value}"));
        self
    }

    /// Adds a fixed-precision numeric field; non-finite values become `null`.
    pub fn num_field(mut self, key: &str, value: f64, decimals: usize) -> Self {
        let rendered = if value.is_finite() {
            format!("{value:.decimals$}")
        } else {
            "null".to_string()
        };
        self.parts.push(format!("\"{key}\": {rendered}"));
        self
    }

    /// Adds a numeric field that may be absent (`null`).
    pub fn opt_num_field(self, key: &str, value: Option<f64>, decimals: usize) -> Self {
        match value {
            Some(v) => self.num_field(key, v, decimals),
            None => {
                let mut this = self;
                this.parts.push(format!("\"{key}\": null"));
                this
            }
        }
    }

    /// Renders the object on one line (the row style the reports use).
    pub fn render(&self) -> String {
        format!("{{{}}}", self.parts.join(", "))
    }
}

/// Writes one benchmark report: the standard envelope, caller-supplied metadata
/// (values are raw JSON fragments, e.g. `"0.3"` or `"[1, 4, 8]"`), and the
/// result rows.
pub fn write_report(
    path: &Path,
    bench: &str,
    command: &str,
    meta: &[(&str, String)],
    results: &[JsonObject],
) -> io::Result<()> {
    let mut lines = Vec::with_capacity(meta.len() + 2);
    lines.push(format!("  \"bench\": \"{bench}\""));
    lines.push(format!("  \"command\": \"{command}\""));
    for (key, value) in meta {
        lines.push(format!("  \"{key}\": {value}"));
    }
    let rows = results
        .iter()
        .map(|r| format!("    {}", r.render()))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n{},\n  \"results\": [\n{}\n  ]\n}}\n",
        lines.join(",\n"),
        rows
    );
    std::fs::write(path, json)
}

/// Resolves `file_name` against the workspace root, regardless of the working
/// directory cargo runs the bench with (CWD = the package directory).
pub fn workspace_file(file_name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root")
        .join(file_name)
}

/// One parsed result row: the string fields and numeric fields that appeared in
/// it, in no particular order. Field lookup is by key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedRow {
    strings: Vec<(String, String)>,
    numbers: Vec<(String, f64)>,
}

impl ParsedRow {
    /// The row's value for a string field, if present.
    pub fn str_value(&self, key: &str) -> Option<&str> {
        self.strings
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The row's value for a numeric field, if present and non-null.
    pub fn num_value(&self, key: &str) -> Option<f64> {
        self.numbers.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Parses the `results` rows out of a report written by [`write_report`] (or the
/// checked-in baselines, which share the shape): every `{...}` object that
/// contains a `"scheme"` field. Tolerant of whitespace and field order; null
/// fields are simply absent from the parsed row.
pub fn parse_rows(json: &str) -> Vec<ParsedRow> {
    let mut rows = Vec::new();
    for fragment in json.split('{').skip(1) {
        let Some(end) = fragment.find('}') else {
            continue;
        };
        let body = &fragment[..end];
        if !body.contains("\"scheme\"") {
            continue;
        }
        let mut row = ParsedRow::default();
        for field in body.split(',') {
            let Some((key, value)) = field.split_once(':') else {
                continue;
            };
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim();
            if let Some(stripped) = value.strip_prefix('"') {
                row.strings
                    .push((key, stripped.trim_end_matches('"').to_string()));
            } else if let Ok(num) = value.parse::<f64>() {
                row.numbers.push((key, num));
            }
        }
        rows.push(row);
    }
    rows
}

/// One regression found by [`compare_overhead`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Scheme name of the regressed point.
    pub scheme: String,
    /// Thread count of the regressed point.
    pub threads: u64,
    /// Baseline ns/op (the comparison anchor).
    pub baseline_ns: f64,
    /// Which baseline statistic anchored the comparison: `"max"` (worst of
    /// the baseline's repeats) or `"mean"` (older single-shot baselines).
    pub baseline_anchor: &'static str,
    /// Fresh ns/op.
    pub fresh_ns: f64,
    /// `fresh / baseline`.
    pub ratio: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} @ {} thread(s): retire {:.1} ns/op vs baseline {} {:.1} ns/op ({:.2}x)",
            self.scheme,
            self.threads,
            self.fresh_ns,
            self.baseline_anchor,
            self.baseline_ns,
            self.ratio
        )
    }
}

/// Compares a fresh overhead report against the checked-in baseline: every
/// `(scheme, threads)` point present in both is a regression when its fresh
/// `retire_ns_per_op` exceeds `max_ratio` times the baseline's per-point
/// anchor. The anchor is `retire_ns_max` — the worst of the baseline's
/// repeats, which already absorbs that point's measured run-to-run noise — on
/// baselines that record it, falling back to the mean `retire_ns_per_op` on
/// older single-shot baselines. Points missing from either side are ignored
/// (the gate catches regressions, not matrix changes — those show up in
/// review).
pub fn compare_overhead(
    baseline: &[ParsedRow],
    fresh: &[ParsedRow],
    max_ratio: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for base in baseline {
        let (Some(scheme), Some(threads), Some(base_mean)) = (
            base.str_value("scheme"),
            base.num_value("threads"),
            base.num_value("retire_ns_per_op"),
        ) else {
            continue;
        };
        let (base_ns, baseline_anchor) = match base.num_value("retire_ns_max") {
            Some(max) if max > 0.0 => (max, "max"),
            _ => (base_mean, "mean"),
        };
        if base_ns <= 0.0 {
            continue;
        }
        let fresh_ns = fresh.iter().find_map(|row| {
            (row.str_value("scheme") == Some(scheme) && row.num_value("threads") == Some(threads))
                .then(|| row.num_value("retire_ns_per_op"))
                .flatten()
        });
        if let Some(fresh_ns) = fresh_ns {
            let ratio = fresh_ns / base_ns;
            if ratio > max_ratio {
                regressions.push(Regression {
                    scheme: scheme.to_string(),
                    threads: threads as u64,
                    baseline_ns: base_ns,
                    baseline_anchor,
                    fresh_ns,
                    ratio,
                });
            }
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[(&str, u64, f64)]) -> String {
        let objects: Vec<JsonObject> = rows
            .iter()
            .map(|(scheme, threads, ns)| {
                JsonObject::new()
                    .str_field("scheme", scheme)
                    .int_field("threads", *threads)
                    .num_field("retire_ns_per_op", *ns, 2)
                    .opt_num_field("retire_overhead_vs_none_pct", None, 1)
            })
            .collect();
        let mut lines = vec![
            "  \"bench\": \"overhead_summary\"".to_string(),
            "  \"command\": \"cargo bench\"".to_string(),
        ];
        lines.push("  \"unit\": \"nanoseconds per operation\"".to_string());
        format!(
            "{{\n{},\n  \"results\": [\n{}\n  ]\n}}\n",
            lines.join(",\n"),
            objects
                .iter()
                .map(|o| format!("    {}", o.render()))
                .collect::<Vec<_>>()
                .join(",\n")
        )
    }

    #[test]
    fn object_renders_in_field_order_with_null_for_non_finite() {
        let row = JsonObject::new()
            .str_field("scheme", "qsbr")
            .int_field("threads", 4)
            .num_field("retire_ns_per_op", 12.345, 2)
            .num_field("bad", f64::NAN, 2)
            .opt_num_field("missing", None, 1);
        assert_eq!(
            row.render(),
            "{\"scheme\": \"qsbr\", \"threads\": 4, \"retire_ns_per_op\": 12.35, \
             \"bad\": null, \"missing\": null}"
        );
    }

    #[test]
    fn parse_rows_round_trips_written_rows() {
        let json = report(&[("none", 1, 91.52), ("qsbr", 8, 729.21)]);
        let rows = parse_rows(&json);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].str_value("scheme"), Some("none"));
        assert_eq!(rows[0].num_value("threads"), Some(1.0));
        assert_eq!(rows[1].num_value("retire_ns_per_op"), Some(729.21));
        assert_eq!(
            rows[1].num_value("retire_overhead_vs_none_pct"),
            None,
            "null is absent"
        );
    }

    #[test]
    fn parse_rows_reads_the_checked_in_baseline_shape() {
        let json = r#"{
  "bench": "overhead_summary",
  "results": [
    {"scheme": "ebr", "threads": 8, "retire_ns_per_op": 14796.77, "quiescent_state_ns_per_op": 170.22, "retire_overhead_vs_none_pct": 1349.1}
  ]
}"#;
        let rows = parse_rows(json);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].str_value("scheme"), Some("ebr"));
        assert_eq!(rows[0].num_value("retire_ns_per_op"), Some(14796.77));
    }

    #[test]
    fn compare_flags_only_points_beyond_the_ratio() {
        let baseline = parse_rows(&report(&[("hp", 1, 100.0), ("hp", 8, 600.0)]));
        let fresh = parse_rows(&report(&[("hp", 1, 250.0), ("hp", 8, 2000.0)]));
        let regressions = compare_overhead(&baseline, &fresh, 3.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].scheme, "hp");
        assert_eq!(regressions[0].threads, 8);
        assert!((regressions[0].ratio - 2000.0 / 600.0).abs() < 1e-9);
        assert_eq!(regressions[0].baseline_anchor, "mean");
        assert!(regressions[0].to_string().contains("hp @ 8 thread(s)"));
        assert!(regressions[0].to_string().contains("baseline mean"));
    }

    #[test]
    fn compare_anchors_on_the_baseline_repeat_max_when_recorded() {
        // PR 6 baselines record min/max across repeats per point; the gate
        // compares fresh means against the per-point *max* so the baseline's
        // own noise band is absorbed and the ratio can stay tight.
        let baseline = parse_rows(
            r#"{
  "bench": "overhead_summary",
  "results": [
    {"scheme": "hp", "threads": 4, "retire_ns_per_op": 100.0, "retire_ns_min": 90.0, "retire_ns_max": 130.0},
    {"scheme": "hp", "threads": 8, "retire_ns_per_op": 600.0, "retire_ns_min": 550.0, "retire_ns_max": 700.0}
  ]
}"#,
        );
        let fresh = parse_rows(&report(&[("hp", 4, 255.0), ("hp", 8, 1300.0)]));
        // 255/130 = 1.96x stays under 2x; 1300/700 = 1.86x does too — but
        // against the means both would have tripped a 2x gate.
        assert!(compare_overhead(&baseline, &fresh, 2.0).is_empty());
        let regressions = compare_overhead(&baseline, &fresh, 1.9);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].threads, 4);
        assert_eq!(regressions[0].baseline_anchor, "max");
        assert!((regressions[0].baseline_ns - 130.0).abs() < 1e-9);
        assert!(regressions[0].to_string().contains("baseline max"));
    }

    #[test]
    fn compare_ignores_points_missing_from_either_side() {
        let baseline = parse_rows(&report(&[("hp", 1, 100.0), ("rc", 4, 100.0)]));
        let fresh = parse_rows(&report(&[("hp", 1, 100.0)]));
        assert!(compare_overhead(&baseline, &fresh, 3.0).is_empty());
    }

    #[test]
    fn workspace_file_targets_the_repo_root() {
        let path = workspace_file("BENCH_test.json");
        assert!(path.ends_with("BENCH_test.json"));
        assert!(path.parent().unwrap().join("Cargo.toml").exists());
    }
}
