//! `lint_unsafe`: every `unsafe` *block* in the workspace must carry a
//! `// SAFETY:` comment — on the same line, or in the run of comment /
//! attribute lines immediately above the statement that opens the block.
//!
//! CI runs this binary and fails the build on any naked block:
//!
//! ```text
//! cargo run -p bench --bin lint_unsafe
//! ```
//!
//! The checker is a line scanner, not a parser, tuned to this codebase's
//! formatting (rustfmt-clean, one statement per line). It deliberately skips:
//!
//! * `unsafe fn` / `unsafe impl` / `unsafe trait` / `unsafe extern`
//!   declarations — their obligations live on the *callers* and *bodies*;
//! * occurrences inside `//`-comments, doc comments, and string literals
//!   (detected by stripping those spans before matching);
//! * `vendor/` and `target/` trees.
//!
//! A block is satisfied by a marker on the same physical line, or by a marker
//! in the contiguous run of lines directly above it consisting of comments,
//! attributes, wrapped fragments of the opening statement, and *other unsafe
//! lines* — so one `// SAFETY:` comment may cover a tight cluster of unsafe
//! statements it textually dominates. Blank lines and safe statements break
//! the run: a safety argument must visibly belong to the block it discharges.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// Built by concatenation so this file never flags (or documents) itself.
fn marker() -> String {
    format!("// {}:", "SAFETY")
}

fn main() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rust_files(&root, &mut files);
    files.sort();

    let marker = marker();
    let mut violations = Vec::new();
    for path in &files {
        let Ok(source) = fs::read_to_string(path) else {
            continue;
        };
        scan_file(path, &source, &marker, &mut violations);
    }

    if violations.is_empty() {
        println!(
            "lint_unsafe: {} files scanned, every unsafe block is annotated",
            files.len()
        );
        return ExitCode::SUCCESS;
    }
    let mut report = String::new();
    for v in &violations {
        let _ = writeln!(report, "{v}");
    }
    eprint!("{report}");
    eprintln!(
        "lint_unsafe: {} unsafe block(s) without a `{marker}` comment",
        violations.len()
    );
    ExitCode::FAILURE
}

fn workspace_root() -> PathBuf {
    // bench lives at <root>/crates/bench; fall back to cwd when run elsewhere.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == ".git" {
                continue;
            }
            collect_rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Strips `//` comments and the contents of ordinary string literals so that
/// `unsafe` inside either never matches. Char literals and raw strings are
/// rare enough here that plain `"` handling suffices.
fn code_portion(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_string = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Does the code portion open an unsafe *block* (as opposed to declaring an
/// unsafe fn/impl/trait/extern)?
fn opens_unsafe_block(code: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + "unsafe".len()..];
        let after_trim = after.trim_start();
        let is_decl = ["fn ", "fn(", "impl ", "impl<", "trait ", "extern "]
            .iter()
            .any(|kw| after_trim.starts_with(kw));
        if before_ok && !is_decl && after_trim.starts_with('{') {
            return true;
        }
        rest = &rest[pos + "unsafe".len()..];
    }
    false
}

/// A line that may sit between a SAFETY comment and the block it annotates:
/// other comment lines and attributes (e.g. `#[allow(...)]`).
fn is_annotation_line(trimmed: &str) -> bool {
    trimmed.starts_with("//") || trimmed.starts_with("#[") || trimmed.starts_with("#![")
}

fn scan_file(path: &Path, source: &str, marker: &str, violations: &mut Vec<String>) {
    let lines: Vec<&str> = source.lines().collect();
    for (idx, line) in lines.iter().enumerate() {
        let code = code_portion(line);
        if !opens_unsafe_block(&code) {
            continue;
        }
        if line.contains(marker) {
            continue;
        }
        // Walk the contiguous run directly above: comments, attributes,
        // rustfmt-wrapped fragments of the opening statement (no `;`/`}`/`{`
        // terminator yet), and other unsafe lines (one comment may dominate a
        // tight cluster of unsafe statements). Blank lines and safe
        // statements end the run.
        let mut found = false;
        let mut i = idx;
        while i > 0 {
            i -= 1;
            let above = lines[i].trim();
            if above.is_empty() {
                break;
            }
            let above_code = code_portion(lines[i]);
            let above_code = above_code.trim();
            let same_statement = !above_code.ends_with(';')
                && !above_code.ends_with('}')
                && !above_code.ends_with('{');
            let unsafe_line = above_code.contains("unsafe");
            if !is_annotation_line(above) && !same_statement && !unsafe_line {
                break;
            }
            if above.contains(marker) {
                found = true;
                break;
            }
        }
        if !found {
            violations.push(format!(
                "{}:{}: unsafe block without a `{marker}` comment",
                path.display(),
                idx + 1
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations_in(source: &str) -> usize {
        let mut v = Vec::new();
        scan_file(Path::new("test.rs"), source, &marker(), &mut v);
        v.len()
    }

    #[test]
    fn annotated_blocks_pass() {
        let m = marker();
        assert_eq!(violations_in(&format!("{m} fine.\nunsafe {{ x() }}\n")), 0);
        assert_eq!(
            violations_in(&format!("let y = unsafe {{ x() }}; {m} inline\n")),
            0
        );
        assert_eq!(
            violations_in(&format!(
                "{m} above the attribute.\n#[allow(dead_code)]\nunsafe {{ x() }}\n"
            )),
            0
        );
        // Marker within a rustfmt-wrapped opening statement.
        assert_eq!(
            violations_in(&format!(
                "{m} wrapped.\nlet v = foo(\n    bar,\n).map(|p| unsafe {{ x(p) }});\n"
            )),
            0
        );
    }

    #[test]
    fn naked_blocks_fail() {
        assert_eq!(violations_in("unsafe { x() }\n"), 1);
        let m = marker();
        // A blank line divorces the comment from the block.
        assert_eq!(
            violations_in(&format!("{m} stale.\n\nunsafe {{ x() }}\n")),
            1
        );
    }

    #[test]
    fn declarations_and_comments_are_skipped() {
        assert_eq!(violations_in("unsafe fn naked() {}\n"), 0);
        assert_eq!(violations_in("unsafe impl Send for T {}\n"), 0);
        assert_eq!(violations_in("unsafe trait Zeroable {}\n"), 0);
        assert_eq!(
            violations_in("// a comment mentioning unsafe { blocks }\n"),
            0
        );
        assert_eq!(violations_in("let s = \"unsafe { not code }\";\n"), 0);
    }
}
