//! CI regression gate over `BENCH_overhead.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin compare_overhead -- \
//!     BENCH_overhead.json BENCH_overhead.fresh.json [--max-ratio 2.0]
//! ```
//!
//! Compares every `(scheme, threads)` point's fresh `retire_ns_per_op`
//! against the checked-in baseline's per-point `retire_ns_max` — the worst of
//! the baseline's repeats, which already carries that point's measured noise
//! band — and exits nonzero when any point regressed by more than the given
//! ratio (default 2x: the max anchor absorbs run-to-run noise, so the ratio
//! can sit tighter than the old 3x-of-the-mean gate while still catching an
//! accidental O(n) on the retire path). Baselines without repeat data fall
//! back to comparing against the mean.

use bench::json::{compare_overhead, parse_rows};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: compare_overhead <baseline.json> <fresh.json> [--max-ratio <ratio>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_ratio = 2.0f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--max-ratio" {
            match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if r > 0.0 => max_ratio = r,
                _ => return usage(),
            }
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        return usage();
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(contents) => Some(contents),
        Err(err) => {
            eprintln!("compare_overhead: cannot read {path}: {err}");
            None
        }
    };
    let (Some(baseline_json), Some(fresh_json)) = (read(baseline_path), read(fresh_path)) else {
        return ExitCode::from(2);
    };

    let baseline = parse_rows(&baseline_json);
    let fresh = parse_rows(&fresh_json);
    if baseline.is_empty() || fresh.is_empty() {
        eprintln!(
            "compare_overhead: no result rows parsed (baseline: {}, fresh: {})",
            baseline.len(),
            fresh.len()
        );
        return ExitCode::from(2);
    }
    println!(
        "comparing {} fresh points against {} baseline points (max ratio {max_ratio}x)",
        fresh.len(),
        baseline.len()
    );

    let regressions = compare_overhead(&baseline, &fresh, max_ratio);
    if regressions.is_empty() {
        println!("OK: no retire-path point regressed beyond {max_ratio}x");
        ExitCode::SUCCESS
    } else {
        for regression in &regressions {
            eprintln!("REGRESSION: {regression}");
        }
        eprintln!(
            "{} point(s) regressed beyond {max_ratio}x",
            regressions.len()
        );
        ExitCode::FAILURE
    }
}
