//! Noise-band accumulator over repeated `BENCH_overhead.json` runs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin noise_band -- \
//!     BENCH_overhead_noise_band.json run1.json run2.json [run3.json ...]
//! ```
//!
//! CI's bench-smoke job regenerates `BENCH_overhead.fresh.json` several times
//! per workflow run; this binary merges those reports by `(scheme, threads)`
//! point and emits one row per point carrying the **band** the repeated runs
//! actually spanned — per-point min, max, mean and spread of
//! `retire_ns_per_op`. The uploaded band report is what a human (or the next
//! baseline refresh) reads to judge whether a gate trip was noise or a real
//! regression: a fresh value inside the band is noise by construction.
//!
//! Runs that already carry repeat spread (`retire_ns_min` / `retire_ns_max`,
//! as the PR 6+ baselines do) widen the band with their own extremes, so a
//! single multi-repeat report and several single-shot reports merge to the
//! same honest envelope.
//!
//! The binary's **own output is a valid input**: a band report's rows
//! (`retire_ns_mean` + `runs` + extremes) fold back in with their run counts
//! and run-weighted means intact. That is what lets CI accumulate bands
//! *across* workflow runs — each bench-smoke job downloads the previous
//! band artifact, merges it with the runs it just produced, and uploads the
//! widened report; merging is associative, so any download/merge order
//! converges on the same envelope.

use bench::json::{parse_rows, write_report, JsonObject, ParsedRow};
use std::process::ExitCode;

/// One accumulated `(scheme, threads)` point.
struct Band {
    scheme: String,
    threads: u64,
    runs: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Band {
    fn mean(&self) -> f64 {
        self.sum / self.runs as f64
    }

    /// `(max - min) / mean`, as a percentage — the headline noise figure.
    fn spread_pct(&self) -> f64 {
        let mean = self.mean();
        if mean > 0.0 {
            (self.max - self.min) / mean * 100.0
        } else {
            0.0
        }
    }
}

/// Folds every parsed row into the band list (first-appearance order).
///
/// Two row shapes are accepted: a raw overhead run (`retire_ns_per_op`, one
/// run, optional per-run repeat extremes) and a **prior band row**
/// (`retire_ns_mean` + `runs`, as this binary itself emits) — the latter
/// folds back in with its run count and run-weighted sum intact, so bands
/// accumulate across workflow runs without double-counting.
fn accumulate(bands: &mut Vec<Band>, rows: &[ParsedRow]) {
    for row in rows {
        let (Some(scheme), Some(threads)) = (row.str_value("scheme"), row.num_value("threads"))
        else {
            continue;
        };
        let (runs, sum, ns) = if let Some(ns) = row.num_value("retire_ns_per_op") {
            (1, ns, ns)
        } else if let Some(mean) = row.num_value("retire_ns_mean") {
            let runs = row
                .num_value("runs")
                .filter(|v| *v >= 1.0)
                .map_or(1, |v| v as u64);
            (runs, mean * runs as f64, mean)
        } else {
            continue;
        };
        // A row that recorded its own spread contributes its extremes.
        let run_min = row.num_value("retire_ns_min").filter(|v| *v > 0.0);
        let run_max = row.num_value("retire_ns_max").filter(|v| *v > 0.0);
        let lo = run_min.unwrap_or(ns);
        let hi = run_max.unwrap_or(ns);
        let threads = threads as u64;
        match bands
            .iter_mut()
            .find(|b| b.scheme == scheme && b.threads == threads)
        {
            Some(band) => {
                band.runs += runs;
                band.sum += sum;
                band.min = band.min.min(lo);
                band.max = band.max.max(hi);
            }
            None => bands.push(Band {
                scheme: scheme.to_string(),
                threads,
                runs,
                sum,
                min: lo,
                max: hi,
            }),
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: noise_band <out.json> <run1.json> [run2.json ...] [--prior <band.json> ...]");
    eprintln!("  --prior: a previous band report to fold in; silently skipped if absent");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Split `--prior <path>` pairs (optional inputs: a first workflow run has
    // no previous band artifact to download) from the required run reports.
    let mut run_paths: Vec<&String> = Vec::new();
    let mut prior_paths: Vec<&String> = Vec::new();
    let mut out_path: Option<&String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--prior" {
            match iter.next() {
                Some(path) => prior_paths.push(path),
                None => return usage(),
            }
        } else if out_path.is_none() {
            out_path = Some(arg);
        } else {
            run_paths.push(arg);
        }
    }
    let Some(out_path) = out_path else {
        return usage();
    };
    if run_paths.is_empty() {
        return usage();
    }

    let mut bands: Vec<Band> = Vec::new();
    let mut merged = 0usize;
    for path in run_paths {
        let contents = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(err) => {
                eprintln!("noise_band: cannot read {path}: {err}");
                return ExitCode::from(2);
            }
        };
        let rows = parse_rows(&contents);
        if rows.is_empty() {
            eprintln!("noise_band: no result rows parsed from {path}");
            return ExitCode::from(2);
        }
        accumulate(&mut bands, &rows);
        merged += 1;
    }
    // Prior band reports widen the envelope with the history they carry; a
    // missing file is the expected first-run state, not an error.
    let mut priors_merged = 0usize;
    for path in prior_paths {
        let contents = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(_) => {
                println!("noise_band: no prior band at {path} (first run?), skipping");
                continue;
            }
        };
        let rows = parse_rows(&contents);
        if rows.is_empty() {
            eprintln!("noise_band: no band rows parsed from prior {path}, skipping");
            continue;
        }
        accumulate(&mut bands, &rows);
        priors_merged += 1;
    }

    let rows: Vec<JsonObject> = bands
        .iter()
        .map(|b| {
            JsonObject::new()
                .str_field("scheme", &b.scheme)
                .int_field("threads", b.threads)
                .int_field("runs", b.runs)
                .num_field("retire_ns_mean", b.mean(), 2)
                .num_field("retire_ns_min", b.min, 2)
                .num_field("retire_ns_max", b.max, 2)
                .num_field("band_spread_pct", b.spread_pct(), 1)
        })
        .collect();
    let meta = [
        ("runs_merged", format!("{merged}")),
        ("prior_bands_merged", format!("{priors_merged}")),
        (
            "unit",
            "\"nanoseconds per operation; band is min..max across merged runs\"".to_string(),
        ),
    ];
    let command = format!("noise_band {}", args.join(" "));
    let out = std::path::Path::new(out_path);
    match write_report(out, "overhead_noise_band", &command, &meta, &rows) {
        Ok(()) => {
            for band in &bands {
                println!(
                    "{:<8} {:>2} thread(s)   {:8.1} ns/op in [{:.1}, {:.1}]  spread {:.1}%  ({} run(s))",
                    band.scheme,
                    band.threads,
                    band.mean(),
                    band.min,
                    band.max,
                    band.spread_pct(),
                    band.runs,
                );
            }
            println!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("noise_band: failed to write {}: {err}", out.display());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(json: &str) -> Vec<ParsedRow> {
        parse_rows(json)
    }

    #[test]
    fn bands_merge_by_point_and_track_extremes() {
        let mut bands = Vec::new();
        accumulate(
            &mut bands,
            &rows(r#"[{"scheme": "hp", "threads": 4, "retire_ns_per_op": 100.0}]"#),
        );
        accumulate(
            &mut bands,
            &rows(r#"[{"scheme": "hp", "threads": 4, "retire_ns_per_op": 140.0}]"#),
        );
        accumulate(
            &mut bands,
            &rows(r#"[{"scheme": "hp", "threads": 8, "retire_ns_per_op": 300.0}]"#),
        );
        assert_eq!(bands.len(), 2);
        let four = &bands[0];
        assert_eq!((four.runs, four.min, four.max), (2, 100.0, 140.0));
        assert!((four.mean() - 120.0).abs() < 1e-9);
        assert!((four.spread_pct() - 40.0 / 120.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn per_run_repeat_spread_widens_the_band() {
        let mut bands = Vec::new();
        accumulate(
            &mut bands,
            &rows(
                r#"[{"scheme": "ebr", "threads": 1, "retire_ns_per_op": 100.0,
                     "retire_ns_min": 80.0, "retire_ns_max": 150.0}]"#,
            ),
        );
        accumulate(
            &mut bands,
            &rows(r#"[{"scheme": "ebr", "threads": 1, "retire_ns_per_op": 90.0}]"#),
        );
        let band = &bands[0];
        assert_eq!((band.min, band.max), (80.0, 150.0));
        assert!((band.mean() - 95.0).abs() < 1e-9, "mean uses per-run means");
    }

    #[test]
    fn prior_band_rows_fold_back_in_run_weighted() {
        // Workflow run 1 produced a band from 3 runs; run 2 adds one fresh run.
        let mut bands = Vec::new();
        accumulate(
            &mut bands,
            &rows(
                r#"[{"scheme": "hp", "threads": 4, "runs": 3, "retire_ns_mean": 120.0,
                     "retire_ns_min": 100.0, "retire_ns_max": 150.0}]"#,
            ),
        );
        accumulate(
            &mut bands,
            &rows(r#"[{"scheme": "hp", "threads": 4, "retire_ns_per_op": 200.0}]"#),
        );
        let band = &bands[0];
        assert_eq!(band.runs, 4, "prior band contributes its full run count");
        assert!(
            (band.mean() - (3.0 * 120.0 + 200.0) / 4.0).abs() < 1e-9,
            "mean is run-weighted, not report-weighted"
        );
        assert_eq!(
            (band.min, band.max),
            (100.0, 200.0),
            "prior extremes persist; fresh extremes widen"
        );
    }

    #[test]
    fn band_merging_is_associative_across_workflow_runs() {
        // Merging (A then B) as one report-set must equal folding A's band
        // output into B — the property the cross-run CI accumulation relies on.
        let run_a = r#"[{"scheme": "ebr", "threads": 8, "retire_ns_per_op": 90.0}]"#;
        let run_b = r#"[{"scheme": "ebr", "threads": 8, "retire_ns_per_op": 110.0}]"#;
        let mut direct = Vec::new();
        accumulate(&mut direct, &rows(run_a));
        accumulate(&mut direct, &rows(run_b));

        let mut staged = Vec::new();
        accumulate(&mut staged, &rows(run_a));
        let band_report = format!(
            r#"[{{"scheme": "ebr", "threads": 8, "runs": {}, "retire_ns_mean": {},
                 "retire_ns_min": {}, "retire_ns_max": {}}}]"#,
            staged[0].runs,
            staged[0].mean(),
            staged[0].min,
            staged[0].max,
        );
        let mut resumed = Vec::new();
        accumulate(&mut resumed, &rows(&band_report));
        accumulate(&mut resumed, &rows(run_b));

        assert_eq!(direct[0].runs, resumed[0].runs);
        assert!((direct[0].mean() - resumed[0].mean()).abs() < 1e-9);
        assert_eq!(
            (direct[0].min, direct[0].max),
            (resumed[0].min, resumed[0].max)
        );
    }

    #[test]
    fn rows_without_the_retire_metric_are_skipped() {
        let mut bands = Vec::new();
        accumulate(
            &mut bands,
            &rows(r#"[{"scheme": "hp", "threads": 4, "other_ns": 5.0}]"#),
        );
        assert!(bands.is_empty());
    }
}
