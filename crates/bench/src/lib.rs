//! # bench — shared plumbing for the figure-reproduction benchmarks
//!
//! Each benchmark target under `benches/` regenerates one figure or in-text claim of
//! the paper's evaluation (§7.3); DESIGN.md §4 maps paper figure → bench target and
//! EXPERIMENTS.md records paper-reported vs. measured values. This library holds the
//! pieces the targets share: environment-variable configuration, the thread sweep
//! and the series runner.
//!
//! ## Environment knobs
//!
//! | variable | default | meaning |
//! |----------|---------|---------|
//! | `QSENSE_BENCH_SECONDS` | `0.3` | measured seconds per data point |
//! | `BENCH_POINT_SECONDS` | — | alias for `QSENSE_BENCH_SECONDS` (lower precedence); used by the CI bench-smoke job |
//! | `QSENSE_BENCH_THREADS` | `1,2,4,8` | thread counts for the scalability sweeps |
//! | `QSENSE_BENCH_DELAY_SECONDS` | `8` | run length of each delay-timeline series |
//! | `QSENSE_BENCH_FULL` | unset | set to `1` to use the paper's full parameters (32 threads, 100 s timelines, 2 000 000-key BST) |
//!
//! The container this reproduction runs in has a single CPU, so the default sweep is
//! short; the shapes (scheme ordering and ratios) are what EXPERIMENTS.md compares
//! against the paper, not absolute Mops/s.

#![warn(missing_docs)]

pub mod json;

use std::time::Duration;
use workload::{
    default_bench_config, make_set, report, run_experiment, DelaySchedule, Experiment, RunResult,
    SchemeKind, Structure, WorkloadSpec,
};

/// Seconds of measurement per data point. `QSENSE_BENCH_SECONDS` wins;
/// `BENCH_POINT_SECONDS` is the alias the CI bench-smoke job sets.
pub fn point_seconds() -> f64 {
    std::env::var("QSENSE_BENCH_SECONDS")
        .or_else(|_| std::env::var("BENCH_POINT_SECONDS"))
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.3)
}

/// Whether the full paper-scale parameters were requested.
pub fn full_scale() -> bool {
    std::env::var("QSENSE_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Thread counts for the scalability sweeps.
pub fn thread_counts() -> Vec<usize> {
    if let Ok(raw) = std::env::var("QSENSE_BENCH_THREADS") {
        let parsed: Vec<usize> = raw
            .split(',')
            .filter_map(|part| part.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    if full_scale() {
        vec![1, 2, 4, 8, 16, 24, 32]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// Run length of each delay-timeline series.
pub fn delay_run_seconds() -> f64 {
    std::env::var("QSENSE_BENCH_DELAY_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if full_scale() { 100.0 } else { 8.0 })
}

/// The key range used for `structure` in this invocation.
pub fn key_range(structure: Structure) -> u64 {
    if full_scale() {
        structure.paper_key_range()
    } else {
        structure.default_key_range()
    }
}

/// Runs one (structure, scheme, threads) cell of a scalability experiment.
pub fn run_point(
    structure: Structure,
    scheme: SchemeKind,
    threads: usize,
    spec: WorkloadSpec,
) -> RunResult {
    let set = make_set(structure, scheme, default_bench_config(threads + 2));
    let experiment = Experiment {
        set,
        spec,
        threads,
        duration: Duration::from_secs_f64(point_seconds()),
        delay: None,
        sample_interval: None,
        limbo_cap: None,
    };
    run_experiment(&experiment)
}

/// Runs a whole scheme series over the configured thread sweep.
pub fn run_series(structure: Structure, scheme: SchemeKind, spec: WorkloadSpec) -> Vec<RunResult> {
    thread_counts()
        .into_iter()
        .map(|threads| run_point(structure, scheme, threads, spec))
        .collect()
}

/// Runs one delay-timeline series (Figure 5, bottom row): fixed thread count, one
/// thread periodically delayed, throughput sampled over time. QSBR runs get an
/// unreclaimed-memory cap so that "runs out of memory and eventually fails" shows up
/// as an abort marker instead of taking the harness down.
pub fn run_delay_timeline(structure: Structure, scheme: SchemeKind, threads: usize) -> RunResult {
    let spec = WorkloadSpec::new(key_range(structure), workload::OpMix::updates_50());
    let run_secs = delay_run_seconds();
    // The paper delays one process for 10 s out of every 20 s of a 100 s run; the
    // schedule is scaled so the same number of fallback/recovery episodes fit the
    // configured run length.
    let scale = run_secs / 100.0;
    let set = make_set(structure, scheme, default_bench_config(threads + 2));
    let experiment = Experiment {
        set,
        spec,
        threads,
        duration: Duration::from_secs_f64(run_secs),
        delay: Some(DelaySchedule::paper_scaled(scale)),
        sample_interval: Some(Duration::from_secs_f64((run_secs / 40.0).max(0.1))),
        limbo_cap: match scheme {
            // The paper's QSBR series dies when the machine runs out of memory; the
            // cap reproduces that outcome at container scale (the timeline also
            // prints the monotonically growing in-limbo counts that precede it).
            SchemeKind::Qsbr | SchemeKind::None => {
                Some(if full_scale() { 2_000_000 } else { 300_000 })
            }
            _ => None,
        },
    };
    run_experiment(&experiment)
}

/// Emits one scalability report (`file_name` in the workspace root) from a set
/// of per-scheme series: one row per `(scheme, threads)` point with throughput,
/// overhead vs. the `"none"` series (when present) and the end-of-run in-limbo
/// count. This is the JSON twin of `report::print_series`, shared by the fig3
/// and fig5 benches so their emitters stay in lockstep with
/// `BENCH_overhead.json`'s envelope.
pub fn write_series_json(
    file_name: &str,
    bench_name: &str,
    command: &str,
    structure: Structure,
    series: &[(&str, Vec<RunResult>)],
) {
    let baseline = series
        .iter()
        .find(|(name, _)| *name == "none")
        .map(|(_, runs)| runs.as_slice());
    let mut rows = Vec::new();
    for (name, runs) in series {
        for run in runs {
            let overhead = baseline
                .and_then(|base| base.iter().find(|b| b.threads == run.threads))
                .map(RunResult::mops)
                .filter(|base_mops| *base_mops > 0.0 && *name != "none")
                .map(|base_mops| (1.0 - run.mops() / base_mops) * 100.0);
            rows.push(
                json::JsonObject::new()
                    .str_field("scheme", name)
                    .str_field("structure", &run.structure)
                    .int_field("threads", run.threads as u64)
                    .num_field("mops_per_sec", run.mops(), 4)
                    .opt_num_field("overhead_vs_none_pct", overhead, 1)
                    .int_field("in_limbo_at_end", run.stats.in_limbo()),
            );
        }
    }
    let threads_list = thread_counts()
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let meta = [
        ("point_seconds", format!("{}", point_seconds())),
        ("threads", format!("[{threads_list}]")),
        ("structure", format!("\"{}\"", structure.name())),
        ("unit", "\"million operations per second\"".to_string()),
    ];
    let path = json::workspace_file(file_name);
    match json::write_report(&path, bench_name, command, &meta, &rows) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}

/// Runs a whole scalability comparison — a baseline-first scheme list over the
/// configured thread sweep — printing each series as it lands and emitting the
/// JSON report at the end. This is the entire body the fig3/fig5 benches share;
/// `schemes[0]` must be the leaky baseline.
pub fn run_and_emit_series(
    structure: Structure,
    schemes: &[SchemeKind],
    spec: WorkloadSpec,
    file_name: &str,
    bench_name: &str,
    command: &str,
) {
    assert_eq!(
        schemes[0],
        SchemeKind::None,
        "the first scheme is the baseline"
    );
    let baseline = run_series(structure, schemes[0], spec);
    report::print_series("none (leaky baseline)", &baseline, None);
    let mut series = vec![(schemes[0].name(), baseline)];
    for scheme in &schemes[1..] {
        let runs = run_series(structure, *scheme, spec);
        report::print_series(scheme.name(), &runs, Some(&series[0].1));
        series.push((scheme.name(), runs));
    }
    write_series_json(file_name, bench_name, command, structure, &series);
}

/// The schemes compared in Figure 3 (the paper's None, QSense, HP — plus the
/// Hazard-Eras extension, which the matrix tracks everywhere the HP family
/// appears).
pub fn fig3_schemes() -> [SchemeKind; 4] {
    [
        SchemeKind::None,
        SchemeKind::QSense,
        SchemeKind::Hp,
        SchemeKind::He,
    ]
}

/// The schemes compared in the Figure 5 scalability row (the paper's None,
/// QSBR, QSense, HP — plus Hazard Eras).
pub fn fig5_schemes() -> [SchemeKind; 5] {
    [
        SchemeKind::None,
        SchemeKind::Qsbr,
        SchemeKind::QSense,
        SchemeKind::Hp,
        SchemeKind::He,
    ]
}

/// The schemes compared in the Figure 5 delay row (the paper's QSBR, QSense,
/// HP — plus Hazard Eras, whose bounded-garbage behaviour under a stalled
/// thread is exactly what this row probes).
pub fn delay_schemes() -> [SchemeKind; 4] {
    [
        SchemeKind::Qsbr,
        SchemeKind::QSense,
        SchemeKind::Hp,
        SchemeKind::He,
    ]
}

/// Emits one delay-timeline report (`file_name` in the workspace root): one row
/// per scheme with throughput, path switches, the end-of-run in-limbo count,
/// the limbo tail's peak across the sampled series, and — for the schemes that
/// hit the unreclaimed-memory cap, as the paper's QSBR does — the abort time.
/// Shares the `bench::json` envelope with every other `BENCH_*.json`.
pub fn write_delay_json(
    file_name: &str,
    bench_name: &str,
    command: &str,
    structure: Structure,
    threads: usize,
    results: &[RunResult],
) {
    let rows: Vec<json::JsonObject> = results
        .iter()
        .map(|run| {
            let peak_limbo = run.samples.iter().map(|s| s.in_limbo).max().unwrap_or(0);
            json::JsonObject::new()
                .str_field("scheme", &run.scheme)
                .str_field("structure", &run.structure)
                .int_field("threads", run.threads as u64)
                .num_field("mops_per_sec", run.mops(), 4)
                .int_field("fallback_switches", run.stats.fallback_switches)
                .int_field("fast_path_switches", run.stats.fast_path_switches)
                .int_field("in_limbo_at_end", run.stats.in_limbo())
                .int_field("peak_in_limbo", peak_limbo)
                .opt_num_field(
                    "aborted_at_secs",
                    run.aborted_at.map(|at| at.as_secs_f64()),
                    3,
                )
        })
        .collect();
    let meta = [
        ("run_seconds", format!("{}", delay_run_seconds())),
        ("threads", format!("{threads}")),
        ("structure", format!("\"{}\"", structure.name())),
        (
            "delay",
            "\"one thread delayed half of every cycle (paper-scaled)\"".to_string(),
        ),
    ];
    let path = json::workspace_file(file_name);
    match json::write_report(&path, bench_name, command, &meta, &rows) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_have_sane_defaults() {
        assert!(point_seconds() > 0.0);
        assert!(!thread_counts().is_empty());
        assert!(delay_run_seconds() > 0.0);
        assert!(key_range(Structure::List) >= 2_000);
    }

    #[test]
    fn a_minimal_point_runs_end_to_end() {
        std::env::set_var("QSENSE_BENCH_SECONDS", "0.05");
        let spec = WorkloadSpec::new(128, workload::OpMix::updates_50());
        let result = run_point(Structure::List, SchemeKind::QSense, 2, spec);
        assert!(result.total_ops > 0);
        assert_eq!(result.scheme, "qsense");
        std::env::remove_var("QSENSE_BENCH_SECONDS");
    }
}
