//! # bench — shared plumbing for the figure-reproduction benchmarks
//!
//! Each benchmark target under `benches/` regenerates one figure or in-text claim of
//! the paper's evaluation (§7.3); DESIGN.md §4 maps paper figure → bench target and
//! EXPERIMENTS.md records paper-reported vs. measured values. This library holds the
//! pieces the targets share: environment-variable configuration, the thread sweep
//! and the series runner.
//!
//! ## Environment knobs
//!
//! | variable | default | meaning |
//! |----------|---------|---------|
//! | `QSENSE_BENCH_SECONDS` | `0.3` | measured seconds per data point |
//! | `QSENSE_BENCH_THREADS` | `1,2,4,8` | thread counts for the scalability sweeps |
//! | `QSENSE_BENCH_DELAY_SECONDS` | `8` | run length of each delay-timeline series |
//! | `QSENSE_BENCH_FULL` | unset | set to `1` to use the paper's full parameters (32 threads, 100 s timelines, 2 000 000-key BST) |
//!
//! The container this reproduction runs in has a single CPU, so the default sweep is
//! short; the shapes (scheme ordering and ratios) are what EXPERIMENTS.md compares
//! against the paper, not absolute Mops/s.

#![warn(missing_docs)]

use std::time::Duration;
use workload::{
    default_bench_config, make_set, run_experiment, DelaySchedule, Experiment, RunResult,
    SchemeKind, Structure, WorkloadSpec,
};

/// Seconds of measurement per data point.
pub fn point_seconds() -> f64 {
    std::env::var("QSENSE_BENCH_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.3)
}

/// Whether the full paper-scale parameters were requested.
pub fn full_scale() -> bool {
    std::env::var("QSENSE_BENCH_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Thread counts for the scalability sweeps.
pub fn thread_counts() -> Vec<usize> {
    if let Ok(raw) = std::env::var("QSENSE_BENCH_THREADS") {
        let parsed: Vec<usize> = raw
            .split(',')
            .filter_map(|part| part.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    if full_scale() {
        vec![1, 2, 4, 8, 16, 24, 32]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// Run length of each delay-timeline series.
pub fn delay_run_seconds() -> f64 {
    std::env::var("QSENSE_BENCH_DELAY_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if full_scale() { 100.0 } else { 8.0 })
}

/// The key range used for `structure` in this invocation.
pub fn key_range(structure: Structure) -> u64 {
    if full_scale() {
        structure.paper_key_range()
    } else {
        structure.default_key_range()
    }
}

/// Runs one (structure, scheme, threads) cell of a scalability experiment.
pub fn run_point(
    structure: Structure,
    scheme: SchemeKind,
    threads: usize,
    spec: WorkloadSpec,
) -> RunResult {
    let set = make_set(structure, scheme, default_bench_config(threads + 2));
    let experiment = Experiment {
        set,
        spec,
        threads,
        duration: Duration::from_secs_f64(point_seconds()),
        delay: None,
        sample_interval: None,
        limbo_cap: None,
    };
    run_experiment(&experiment)
}

/// Runs a whole scheme series over the configured thread sweep.
pub fn run_series(structure: Structure, scheme: SchemeKind, spec: WorkloadSpec) -> Vec<RunResult> {
    thread_counts()
        .into_iter()
        .map(|threads| run_point(structure, scheme, threads, spec))
        .collect()
}

/// Runs one delay-timeline series (Figure 5, bottom row): fixed thread count, one
/// thread periodically delayed, throughput sampled over time. QSBR runs get an
/// unreclaimed-memory cap so that "runs out of memory and eventually fails" shows up
/// as an abort marker instead of taking the harness down.
pub fn run_delay_timeline(
    structure: Structure,
    scheme: SchemeKind,
    threads: usize,
) -> RunResult {
    let spec = WorkloadSpec::new(key_range(structure), workload::OpMix::updates_50());
    let run_secs = delay_run_seconds();
    // The paper delays one process for 10 s out of every 20 s of a 100 s run; the
    // schedule is scaled so the same number of fallback/recovery episodes fit the
    // configured run length.
    let scale = run_secs / 100.0;
    let set = make_set(structure, scheme, default_bench_config(threads + 2));
    let experiment = Experiment {
        set,
        spec,
        threads,
        duration: Duration::from_secs_f64(run_secs),
        delay: Some(DelaySchedule::paper_scaled(scale)),
        sample_interval: Some(Duration::from_secs_f64((run_secs / 40.0).max(0.1))),
        limbo_cap: match scheme {
            // The paper's QSBR series dies when the machine runs out of memory; the
            // cap reproduces that outcome at container scale (the timeline also
            // prints the monotonically growing in-limbo counts that precede it).
            SchemeKind::Qsbr | SchemeKind::None => {
                Some(if full_scale() { 2_000_000 } else { 300_000 })
            }
            _ => None,
        },
    };
    run_experiment(&experiment)
}

/// The schemes compared in Figure 3 (None, QSense, HP).
pub fn fig3_schemes() -> [SchemeKind; 3] {
    [SchemeKind::None, SchemeKind::QSense, SchemeKind::Hp]
}

/// The schemes compared in the Figure 5 scalability row (None, QSBR, QSense, HP).
pub fn fig5_schemes() -> [SchemeKind; 4] {
    [
        SchemeKind::None,
        SchemeKind::Qsbr,
        SchemeKind::QSense,
        SchemeKind::Hp,
    ]
}

/// The schemes compared in the Figure 5 delay row (QSBR, QSense, HP).
pub fn delay_schemes() -> [SchemeKind; 3] {
    [SchemeKind::Qsbr, SchemeKind::QSense, SchemeKind::Hp]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_have_sane_defaults() {
        assert!(point_seconds() > 0.0);
        assert!(!thread_counts().is_empty());
        assert!(delay_run_seconds() > 0.0);
        assert!(key_range(Structure::List) >= 2_000);
    }

    #[test]
    fn a_minimal_point_runs_end_to_end() {
        std::env::set_var("QSENSE_BENCH_SECONDS", "0.05");
        let spec = WorkloadSpec::new(128, workload::OpMix::updates_50());
        let result = run_point(Structure::List, SchemeKind::QSense, 2, spec);
        assert!(result.total_ops > 0);
        assert_eq!(result.scheme, "qsense");
        std::env::remove_var("QSENSE_BENCH_SECONDS");
    }
}
