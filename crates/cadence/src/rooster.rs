//! Rooster threads.
//!
//! The paper (§5.1) creates one *rooster process* per core, pinned to that core,
//! whose only job is to sleep for `T`, wake up (forcing a context switch that acts as
//! a memory barrier for whatever worker was running on the core), and go back to
//! sleep. This module provides the equivalent background threads for this
//! reproduction: each wake-up optionally issues a process-wide asymmetric barrier
//! (`membarrier(2)`), which provides the same guarantee the paper derives from the
//! context switch — all hazard-pointer stores issued before the wake-up are globally
//! visible afterwards.
//!
//! Rooster threads are the *synchronous* part of the paper's model: workers may be
//! delayed arbitrarily, but roosters are assumed to keep ticking. They never touch
//! the data structure and never fail (their loop cannot panic), matching the paper's
//! assumption 3.

use reclaim_core::membarrier;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

struct Shared {
    /// Set to request shutdown; protected by `lock` so sleepers can be woken early.
    stop: AtomicBool,
    /// Total number of wake-ups across all rooster threads.
    wakeups: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

/// A pool of rooster threads waking every `interval`.
pub struct Rooster {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    interval: Duration,
}

impl Rooster {
    /// Spawns `count` rooster threads with the given sleep interval. With
    /// `count == 0` no threads are spawned (useful for deterministic tests that
    /// drive a manual clock instead).
    pub fn spawn(count: usize, interval: Duration, use_membarrier: bool) -> Self {
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            wakeups: AtomicU64::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        });
        let threads = (0..count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rooster-{i}"))
                    .spawn(move || rooster_loop(&shared, interval, use_membarrier))
                    .expect("failed to spawn rooster thread")
            })
            .collect();
        Self {
            shared,
            threads,
            interval,
        }
    }

    /// The configured sleep interval `T`.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Number of rooster threads running.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Total wake-ups observed so far (diagnostics / tests).
    pub fn wakeup_count(&self) -> u64 {
        self.shared.wakeups.load(Ordering::Acquire)
    }

    /// Stops and joins all rooster threads. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Hold the lock while notifying so a rooster cannot check `stop` and then
        // start waiting after the notification (lost wake-up).
        {
            let _guard = self.shared.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.cv.notify_all();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Rooster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn rooster_loop(shared: &Shared, interval: Duration, use_membarrier: bool) {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        // Sleep for T, but remain responsive to shutdown.
        let guard = shared.lock.lock().unwrap_or_else(|e| e.into_inner());
        let (_guard, _timeout) = shared
            .cv
            .wait_timeout(guard, interval)
            .unwrap_or_else(|e| e.into_inner());
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        // Wake-up: this is the moment the paper's context switch would occur. The
        // asymmetric barrier makes every worker's outstanding hazard-pointer stores
        // globally visible, which is exactly what the safety proof needs.
        if use_membarrier {
            membarrier::heavy_barrier();
        } else {
            std::sync::atomic::fence(Ordering::SeqCst);
        }
        shared.wakeups.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_is_a_valid_configuration() {
        let mut rooster = Rooster::spawn(0, Duration::from_millis(1), false);
        assert_eq!(rooster.thread_count(), 0);
        assert_eq!(rooster.wakeup_count(), 0);
        rooster.shutdown();
    }

    #[test]
    fn roosters_wake_up_and_count() {
        let rooster = Rooster::spawn(2, Duration::from_millis(2), false);
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            rooster.wakeup_count() >= 4,
            "wakeups = {}",
            rooster.wakeup_count()
        );
        assert_eq!(rooster.thread_count(), 2);
        assert_eq!(rooster.interval(), Duration::from_millis(2));
    }

    #[test]
    fn shutdown_is_prompt_even_with_a_long_interval() {
        let start = std::time::Instant::now();
        let mut rooster = Rooster::spawn(1, Duration::from_secs(3600), true);
        rooster.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown must not wait for the full sleep interval"
        );
    }

    #[test]
    fn double_shutdown_is_harmless() {
        let mut rooster = Rooster::spawn(1, Duration::from_millis(1), false);
        rooster.shutdown();
        rooster.shutdown();
    }
}
