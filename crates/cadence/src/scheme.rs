//! The Cadence scheme object and per-thread handle.

use crate::rooster::Rooster;
use reclaim_core::retired::DropFn;
use reclaim_core::stats::{StatStripe, StatsSnapshot};
use reclaim_core::{
    membarrier, BudgetGovernor, BudgetVerdict, CachePadded, CapacityExhausted, Era, HandleCache,
    HandleTelemetry, ParkedChain, PtrScratch, Registry, RetiredPtr, ScanParts, SegBag, SegPool,
    SlotId, Smr, SmrConfig, SmrHandle, Telemetry, NO_BIRTH_ERA,
};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-thread shared record: `K` hazard-pointer slots, written without fences.
pub(crate) struct CadenceRecord {
    slots: Box<[AtomicPtr<u8>]>,
}

impl CadenceRecord {
    fn new(k: usize) -> Self {
        Self {
            slots: (0..k)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }

    /// Publishes a hazard pointer **without a hardware fence** — the defining
    /// difference from classic HP (paper Algorithm 3, `assign_HP`, lines 8–12:
    /// "No need for a memory barrier here").
    #[inline]
    fn set(&self, index: usize, ptr: *mut u8) {
        self.slots[index].store(ptr, Ordering::Release);
        // Only a compiler fence: the store must not be reordered (by the compiler)
        // after the caller's validation load; hardware-level visibility is provided
        // by the rooster wake-up + deferred-reclamation age bound.
        membarrier::light_barrier();
    }

    fn clear_all(&self) {
        for slot in self.slots.iter() {
            slot.store(std::ptr::null_mut(), Ordering::Release);
        }
    }

    fn collect_into(&self, out: &mut Vec<*mut u8>) {
        for slot in self.slots.iter() {
            let p = slot.load(Ordering::Acquire);
            if !p.is_null() {
                out.push(p);
            }
        }
    }
}

/// The Cadence reclamation scheme (the paper's fallback path, usable stand-alone).
pub struct Cadence {
    config: SmrConfig,
    registry: Registry<CadenceRecord>,
    /// Counter stripe for events with no owning slot (parked-bag frees at drop).
    scheme_stats: CachePadded<StatStripe>,
    rooster: Mutex<Rooster>,
    /// Leftovers of exited threads: dying handles park, the next surviving
    /// handle to flush adopts, and scheme drop drains (see [`ParkedChain`]).
    parked: ParkedChain,
    /// Pools + scratch buffers of exited threads, adopted by the next
    /// registrant so handle churn is allocation-free after the first wave.
    handle_cache: HandleCache<ScanParts>,
    /// Limbo-byte accounting and the budget escalation ladder. A forced scan
    /// still honours the `T + ε` age gate — bypassing it would forfeit exactly
    /// the fence-free safety argument Cadence exists for — so under a very
    /// coarse `rooster_interval` the budget can only be met by scanning more
    /// often, never by freeing younger nodes.
    governor: BudgetGovernor,
    /// Telemetry histograms (op latency, scan duration, retire→free delay).
    telemetry: Arc<Telemetry>,
}

impl Cadence {
    /// Creates a Cadence scheme, spawning its rooster threads.
    pub fn new(config: SmrConfig) -> Arc<Self> {
        let registry = Registry::new(config.max_threads, |_| {
            CadenceRecord::new(config.hp_per_thread)
        });
        let rooster = Rooster::spawn(
            config.rooster_threads,
            config.rooster_interval,
            config.use_membarrier,
        );
        let handle_cache = HandleCache::with_capacity(config.max_threads);
        let governor = BudgetGovernor::new(config.limbo_budget, config.clock.clone());
        let telemetry = Arc::new(Telemetry::from_config(&config));
        Arc::new(Self {
            config,
            registry,
            scheme_stats: CachePadded::new(StatStripe::new()),
            rooster: Mutex::new(rooster),
            parked: ParkedChain::new(),
            handle_cache,
            governor,
            telemetry,
        })
    }

    /// Creates a Cadence scheme with default configuration.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(SmrConfig::default())
    }

    /// The configuration this scheme was created with.
    pub fn config(&self) -> &SmrConfig {
        &self.config
    }

    /// Total rooster wake-ups so far (diagnostics / tests).
    pub fn rooster_wakeups(&self) -> u64 {
        self.rooster
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .wakeup_count()
    }

    /// Snapshots every published hazard pointer into `out`. Callers pass a
    /// reusable scratch buffer sized at registration (`N·K` entries, the maximum
    /// possible), so steady-state scans never allocate.
    fn collect_protected(&self, out: &mut Vec<*mut u8>) {
        self.registry
            .collect_protected(out, CadenceRecord::collect_into);
    }

    /// The paper's `scan` (Algorithm 3, lines 14–33): free retired nodes that are
    /// both *old enough* (deferred reclamation) and not covered by any hazard
    /// pointer; keep the rest for a later scan. Counters go to `stats` (the
    /// calling handle's stripe); drained segments return to `pool`.
    fn scan_into(
        &self,
        bag: &mut SegBag,
        pool: &mut SegPool,
        scratch: &mut Vec<*mut u8>,
        stats: &StatStripe,
        tele_stripe: usize,
    ) -> usize {
        stats.add_scan();
        // Every Cadence scan walks the aged prefix node by node.
        stats.add_scan_walk();
        self.collect_protected(scratch);
        let protected: &[*mut u8] = scratch;
        let bytes_before = bag.bytes();
        let now = self.config.clock.now();
        let min_age = self.config.min_reclaim_age_nanos();
        let observer = self.telemetry.scan_observer(tele_stripe);
        // SAFETY (paper Property 1): a node that has been retired for at least
        // T + ε was unlinked before the most recent rooster wake-up, so any hazard
        // pointer that could protect it (published, per Condition 1, while the node
        // was still reachable, i.e. before it was retired) is visible to this scan.
        // If the snapshot does not contain the node, no thread holds a hazardous
        // reference to it and freeing is safe.
        //
        // The walk stops at the first too-young node: the bag is pushed in
        // retirement order, so everything behind it is younger still — the scan
        // is O(aged prefix), not O(bag). (Adopted parked chains spliced behind
        // younger nodes are only delayed by this, never endangered.)
        // SAFETY: the bag owns these retired nodes; a node is freed only when aged past `min_age` and absent from the hazard snapshot.
        let freed = unsafe {
            bag.reclaim_if_while(
                pool,
                |node| node.is_old_enough(now, min_age),
                |node| {
                    let free = protected.binary_search(&node.addr()).is_err();
                    if free {
                        if let Some(obs) = observer.as_ref() {
                            obs.note_free(node);
                        }
                    }
                    free
                },
            )
        };
        stats.add_freed(freed as u64);
        stats.add_freed_bytes((bytes_before - bag.bytes()) as u64);
        if let Some(obs) = observer {
            obs.finish();
        }
        freed
    }

    /// One-off allocating snapshot, for tests and diagnostics only.
    #[cfg(test)]
    fn protected_snapshot(&self) -> Vec<*mut u8> {
        let mut out = Vec::new();
        self.collect_protected(&mut out);
        out
    }
}

impl Smr for Cadence {
    type Handle = CadenceHandle;

    fn try_register(self: &Arc<Self>) -> Result<CadenceHandle, CapacityExhausted> {
        let slot = self.registry.try_acquire().map_err(|e| CapacityExhausted {
            scheme: "cadence",
            capacity: e.capacity,
        })?;
        // Adopt a previous tenant's pool + scratch when available (thread-pool
        // churn); otherwise pre-warm for the scan threshold (capped) so even
        // the first bag fill recycles instead of allocating.
        let parts = self.handle_cache.adopt().unwrap_or_else(|| ScanParts {
            pool: SegPool::with_node_capacity((self.config.scan_threshold + 1).min(2048)),
            scratch: PtrScratch::with_capacity(self.config.max_threads * self.config.hp_per_thread),
        });
        Ok(CadenceHandle {
            budget_stripe: BudgetGovernor::stripe_for(slot.shard()),
            budget_reported: 0,
            tele: HandleTelemetry::attach(&self.telemetry),
            scheme: Arc::clone(self),
            slot,
            retired: SegBag::new(),
            pool: parts.pool,
            scratch: parts.scratch,
            since_last_scan: 0,
        })
    }

    fn name(&self) -> &'static str {
        "cadence"
    }

    fn stats(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        self.registry.merge_stats(&mut snap);
        self.scheme_stats.merge_into(&mut snap);
        snap.peak_limbo_bytes = self.governor.peak_bytes();
        snap
    }

    fn budget_verdict(&self) -> Option<BudgetVerdict> {
        Some(self.governor.verdict())
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.telemetry)
    }
}

impl Drop for Cadence {
    fn drop(&mut self) {
        self.rooster
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown();
        // No handles remain, so nothing can reference a parked node.
        // SAFETY: parked nodes were retired by departed handles and survive until a scan proves them unprotected.
        let (freed, freed_bytes) = unsafe { self.parked.drain_all() };
        self.scheme_stats.add_freed(freed as u64);
        self.scheme_stats.add_freed_bytes(freed_bytes as u64);
        self.governor.note_parked(-(freed_bytes as i64));
    }
}

/// Per-thread handle for [`Cadence`].
pub struct CadenceHandle {
    scheme: Arc<Cadence>,
    slot: SlotId,
    retired: SegBag,
    /// Recycled segments backing `retired`, pre-warmed for the scan threshold so
    /// even the first bag fill never allocates.
    pool: SegPool,
    /// Reusable buffer for hazard-pointer snapshots, sized for the worst case
    /// (`N·K` pointers) at registration so scans are allocation-free.
    scratch: PtrScratch,
    since_last_scan: usize,
    /// This handle's stripe in the scheme's [`BudgetGovernor`].
    budget_stripe: usize,
    /// Local-bytes figure last pushed into the governor (delta-report cursor).
    budget_reported: usize,
    /// Telemetry recording cursor (stripe + op-sampling counter).
    tele: HandleTelemetry,
}

impl CadenceHandle {
    fn record(&self) -> &CadenceRecord {
        self.scheme.registry.get_mine(self.slot)
    }

    fn stats(&self) -> &StatStripe {
        self.scheme.registry.stats(self.slot)
    }

    /// Scans and then re-reports the post-scan byte total, so the governor's
    /// estimate credits what the scan just freed. Returns whether the scheme
    /// is still over budget afterwards.
    fn scan(&mut self) -> bool {
        self.scheme.scan_into(
            &mut self.retired,
            &mut self.pool,
            &mut self.scratch,
            self.scheme.registry.stats(self.slot),
            self.tele.stripe(),
        );
        self.scheme.governor.report(
            self.budget_stripe,
            self.retired.bytes(),
            &mut self.budget_reported,
        )
    }
}

impl SmrHandle for CadenceHandle {
    fn begin_op(&mut self) {}

    fn end_op(&mut self) {}

    #[inline]
    fn protect(&mut self, index: usize, ptr: *mut u8) {
        assert!(
            index < self.scheme.config.hp_per_thread,
            "hazard-pointer index {index} out of range (K = {})",
            self.scheme.config.hp_per_thread
        );
        self.record().set(index, ptr);
    }

    fn clear_protections(&mut self) {
        self.record().clear_all();
    }

    unsafe fn retire(&mut self, ptr: *mut u8, drop_fn: DropFn) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.retire_sized(ptr, drop_fn, NO_BIRTH_ERA, 0) }
    }

    unsafe fn retire_sized(
        &mut self,
        ptr: *mut u8,
        drop_fn: DropFn,
        _birth_era: Era,
        size_bytes: usize,
    ) {
        let stats = self.stats();
        stats.add_retired(1);
        stats.add_retired_bytes(size_bytes as u64);
        if size_bytes == 0 {
            stats.add_size_unknown_retire();
        }
        // Timestamp at removal time — the paper's `free_node_later` records
        // `time_created` on the wrapper node.
        let now = self.scheme.config.clock.now();
        // SAFETY: forwarded from the caller's contract.
        let mut node =
            unsafe { RetiredPtr::with_birth_sized(ptr, drop_fn, now, NO_BIRTH_ERA, size_bytes) };
        node.set_retire_tick(self.tele.retire_tick());
        self.retired.push(&mut self.pool, node);
        self.since_last_scan += 1;
        if self.since_last_scan >= self.scheme.config.scan_threshold {
            self.since_last_scan = 0;
            self.scan();
        } else if self.scheme.governor.observe(
            self.budget_stripe,
            self.retired.bytes(),
            &mut self.budget_reported,
        ) {
            // Budget breach: force a scan ahead of the count threshold (rung
            // 1). The scan still enforces the age gate, so if everything aged
            // out is freed but young garbage keeps us over budget, take one
            // bounded backpressure yield (rung 3) — time is the only thing
            // that makes Cadence garbage reclaimable.
            self.scheme.governor.count_forced_scan();
            self.since_last_scan = 0;
            if self.scan() {
                self.scheme.governor.count_backpressure();
                std::thread::yield_now();
            }
        }
    }

    fn flush(&mut self) {
        // Adopt leftovers of exited threads so they rejoin the scan cycle. The
        // adopted bytes move from the governor's parked counter to this
        // handle's stripe (the post-scan report picks them up).
        let before = self.retired.bytes();
        self.scheme.parked.adopt_into(&mut self.retired);
        let adopted = self.retired.bytes() - before;
        self.scheme.governor.note_parked(-(adopted as i64));
        self.since_last_scan = 0;
        self.scan();
    }

    fn local_in_limbo(&self) -> usize {
        self.retired.len()
    }

    fn local_limbo_bytes(&self) -> usize {
        self.retired.bytes()
    }

    fn telemetry_op_begin(&mut self) -> Option<Instant> {
        self.tele.op_begin()
    }

    fn telemetry_op_end(&mut self, started: Instant) {
        self.tele.op_end(started);
    }
}

impl Drop for CadenceHandle {
    fn drop(&mut self) {
        self.record().clear_all();
        self.scan();
        // O(1) chain splice; adopted by the next flushing handle or freed at
        // scheme drop. The governor's parked counter takes over the byte
        // accounting so a leaked handle's limbo never goes invisible.
        let parked_bytes = self.retired.bytes();
        self.scheme
            .governor
            .note_handle_exit(self.budget_stripe, &mut self.budget_reported);
        self.scheme.governor.note_parked(parked_bytes as i64);
        self.scheme.parked.park(&mut self.retired);
        self.scheme.registry.release(self.slot);
        // Recycle the workspace to the next registrant (see `HandleCache`).
        self.scheme.handle_cache.park(ScanParts {
            pool: std::mem::take(&mut self.pool),
            scratch: std::mem::take(&mut self.scratch),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_set_and_collect_without_fence() {
        let record = CadenceRecord::new(2);
        record.set(0, 0x42 as *mut u8);
        let mut out = Vec::new();
        record.collect_into(&mut out);
        assert_eq!(out, vec![0x42 as *mut u8]);
        record.clear_all();
        out.clear();
        record.collect_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn snapshot_merges_all_threads() {
        let scheme = Cadence::new(
            SmrConfig::default()
                .with_max_threads(2)
                .with_hp_per_thread(1)
                .with_rooster_threads(0),
        );
        let a = scheme.register();
        let b = scheme.register();
        a.record().set(0, 0x10 as *mut u8);
        b.record().set(0, 0x20 as *mut u8);
        assert_eq!(
            scheme.protected_snapshot(),
            vec![0x10 as *mut u8, 0x20 as *mut u8]
        );
        drop(a);
        drop(b);
    }
}
