//! # cadence — fence-free hazard pointers with rooster threads
//!
//! Cadence is the paper's novel fallback path (§5) and is also usable as a
//! stand-alone reclamation scheme, which this crate provides.
//!
//! Cadence keeps the hazard-pointer *interface* — per-thread protection slots, a scan
//! that frees unprotected retired nodes — but removes the per-node memory fence that
//! makes classic HP slow. Two mechanisms replace it:
//!
//! * **Rooster threads** ([`Rooster`]): background threads that wake every `T`
//!   (the *sleep interval*). In the paper a rooster process pinned to each core
//!   forces a context switch, which drains the store buffer of whichever worker was
//!   running there; in this reproduction the rooster wake-up issues a process-wide
//!   asymmetric barrier (`membarrier(2)` where available — see
//!   `reclaim_core::membarrier` and DESIGN.md §3 for the substitution argument).
//!   Either way, every hazard-pointer store issued before time `t` is globally
//!   visible by `t + T`.
//! * **Deferred reclamation**: every retired node is timestamped; a scan may only
//!   free nodes older than `T + ε` ([`reclaim_core::RetiredPtr::is_old_enough`]).
//!   Combined with the rooster bound this yields the paper's Property 1: when a node
//!   becomes old enough, any hazard pointer that could protect it is already visible,
//!   so "unprotected and old enough" really means unreachable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod rooster;
mod scheme;

pub use rooster::Rooster;
pub use scheme::{Cadence, CadenceHandle};

#[cfg(test)]
// Sanctioned raw-protocol site: these tests exercise the scheme's own
// `protect`/retire interface below the guard layer.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use reclaim_core::{retire_box, Clock, ManualClock, Smr, SmrConfig, SmrHandle};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn tracked(drops: &Arc<AtomicUsize>) -> *mut Tracked {
        Box::into_raw(Box::new(Tracked(Arc::clone(drops))))
    }

    /// A Cadence instance driven by a manual clock and without real rooster threads,
    /// so tests control the passage of time deterministically.
    fn manual_cadence(
        manual: &ManualClock,
        extra: impl FnOnce(SmrConfig) -> SmrConfig,
    ) -> Arc<Cadence> {
        let config = SmrConfig::default()
            .with_clock(Clock::manual(manual.clone()))
            .with_rooster_threads(0)
            .with_rooster_interval(Duration::from_millis(10))
            .with_rooster_epsilon(Duration::from_millis(1));
        Cadence::new(extra(config))
    }

    #[test]
    fn young_nodes_are_never_freed_even_if_unprotected() {
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = manual_cadence(&manual, |c| c);
        let mut handle = scheme.register();
        // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
        unsafe { retire_box(&mut handle, tracked(&drops)) };
        handle.flush();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "deferred reclamation: a node younger than T + ε must survive the scan"
        );
        // Advance past T + ε = 11 ms and scan again.
        manual.advance(Duration::from_millis(12));
        handle.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn old_but_protected_nodes_survive() {
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = manual_cadence(&manual, |c| c.with_hp_per_thread(2));
        let mut owner = scheme.register();
        let mut reader = scheme.register();
        let ptr = tracked(&drops);
        reader.protect(0, ptr.cast());
        // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
        unsafe { retire_box(&mut owner, ptr) };
        manual.advance(Duration::from_millis(100));
        owner.flush();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "hazard pointer must still protect"
        );
        reader.clear_protections();
        owner.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scan_threshold_triggers_reclamation_of_aged_nodes() {
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = manual_cadence(&manual, |c| c.with_scan_threshold(5));
        let mut handle = scheme.register();
        for _ in 0..4 {
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut handle, tracked(&drops)) };
        }
        manual.advance(Duration::from_millis(20));
        assert_eq!(drops.load(Ordering::SeqCst), 0, "below R: no scan yet");
        // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
        unsafe { retire_box(&mut handle, tracked(&drops)) };
        // The 5th retire triggers a scan; the first four nodes are old enough, the
        // fifth was retired just now and must survive.
        assert_eq!(drops.load(Ordering::SeqCst), 4);
        assert_eq!(handle.local_in_limbo(), 1);
    }

    #[test]
    fn no_traversal_fences_are_issued() {
        let manual = ManualClock::new();
        let scheme = manual_cadence(&manual, |c| c);
        let mut handle = scheme.register();
        for i in 0..1000 {
            handle.protect(0, (0x1000 + i) as *mut u8);
        }
        handle.clear_protections();
        handle.flush();
        assert_eq!(
            scheme.stats().traversal_fences,
            0,
            "Cadence's defining property: zero fences on the traversal path"
        );
        drop(handle);
    }

    #[test]
    fn rooster_threads_wake_up_periodically() {
        let scheme = Cadence::new(
            SmrConfig::default()
                .with_rooster_threads(1)
                .with_rooster_interval(Duration::from_millis(2)),
        );
        std::thread::sleep(Duration::from_millis(40));
        assert!(
            scheme.rooster_wakeups() >= 3,
            "expected several rooster wake-ups, got {}",
            scheme.rooster_wakeups()
        );
        drop(scheme);
    }

    #[test]
    fn real_clock_end_to_end_reclaims() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = Cadence::new(
            SmrConfig::default()
                .with_rooster_threads(1)
                .with_rooster_interval(Duration::from_millis(2))
                .with_rooster_epsilon(Duration::from_millis(1))
                .with_scan_threshold(8),
        );
        let mut handle = scheme.register();
        for _ in 0..64 {
            handle.begin_op();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut handle, tracked(&drops)) };
            handle.end_op();
        }
        std::thread::sleep(Duration::from_millis(10));
        handle.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 64);
        drop(handle);
        drop(scheme);
        assert_eq!(drops.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn liveness_bound_on_limbo_size_holds() {
        // Property 2 of the paper: at most N(K + T + R) retired nodes in the system.
        // With a manual clock that never advances, "T" (nodes removable during one
        // rooster interval) is the entire run, so we check the weaker but exact
        // invariant that limbo never exceeds what was retired and that a scan after
        // aging empties it completely (no stuck nodes).
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = manual_cadence(&manual, |c| c.with_scan_threshold(16));
        let mut handle = scheme.register();
        for _ in 0..100 {
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut handle, tracked(&drops)) };
        }
        assert!(handle.local_in_limbo() <= 100);
        manual.advance(Duration::from_secs(1));
        handle.flush();
        assert_eq!(handle.local_in_limbo(), 0);
        assert_eq!(drops.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn scheme_drop_frees_parked_leftovers() {
        let drops = Arc::new(AtomicUsize::new(0));
        let manual = ManualClock::new();
        let scheme = manual_cadence(&manual, |c| c);
        {
            let mut handle = scheme.register();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut handle, tracked(&drops)) };
            // Handle dropped while the node is still too young to free.
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(scheme);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scheme_reports_its_name() {
        let scheme = Cadence::with_defaults();
        assert_eq!(scheme.name(), "cadence");
    }
}
