//! Command-line argument parsing for `qsense-bench`.
//!
//! The parser is hand-rolled (no external dependency) and kept separate from
//! `main.rs` so it can be unit-tested: every flag corresponds either to a paper
//! parameter (`Q`, `R`, `C`, `T`, key range, update percentage) or to an experiment
//! shape (scalability point, delay timeline, scheme comparison).

use reclaim_core::EraAdvancePolicy;
use std::time::Duration;
use workload::{FaultKind, OpMix, SchemeKind, Structure};

/// Which schemes a run compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeSelection {
    /// A single scheme.
    One(SchemeKind),
    /// The paper's legend (none, qsbr, qsense, hp, cadence).
    Paper,
    /// Every implemented scheme, including the related-work baselines.
    All,
}

impl SchemeSelection {
    /// The concrete schemes this selection expands to.
    pub fn schemes(self) -> Vec<SchemeKind> {
        match self {
            SchemeSelection::One(kind) => vec![kind],
            SchemeSelection::Paper => SchemeKind::all().to_vec(),
            SchemeSelection::All => SchemeKind::extended().to_vec(),
        }
    }
}

/// Which faults a `--fault` run injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSelection {
    /// A single fault.
    One(FaultKind),
    /// The whole fault matrix.
    All,
}

impl FaultSelection {
    /// The concrete faults this selection expands to.
    pub fn faults(self) -> Vec<FaultKind> {
        match self {
            FaultSelection::One(kind) => vec![kind],
            FaultSelection::All => FaultKind::all().to_vec(),
        }
    }
}

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct CliOptions {
    /// Data structure under test.
    pub structure: Structure,
    /// Scheme or scheme set under test.
    pub schemes: SchemeSelection,
    /// Worker threads.
    pub threads: usize,
    /// Measured duration per run.
    pub duration: Duration,
    /// Percentage of update operations (split evenly between inserts and deletes).
    pub update_pct: u8,
    /// Key range; defaults to the structure's default range.
    pub key_range: Option<u64>,
    /// Inject the paper's periodic delay (one thread sleeps half of every cycle).
    pub inject_delay: bool,
    /// Print a throughput/limbo time series instead of a single summary row.
    pub timeline: bool,
    /// Quiescence threshold `Q` override.
    pub quiescence: Option<usize>,
    /// Scan threshold `R` override.
    pub scan: Option<usize>,
    /// Fallback threshold `C` override.
    pub fallback: Option<usize>,
    /// Rooster interval `T` override, in milliseconds.
    pub rooster_ms: Option<u64>,
    /// Eviction timeout override, in milliseconds (enables the extension).
    pub eviction_ms: Option<u64>,
    /// Era-advance policy override for the era schemes (`--scheme he`).
    pub era_policy: Option<EraAdvancePolicy>,
    /// Run the fault-injection matrix instead of the throughput experiment.
    pub fault: Option<FaultSelection>,
    /// Run the server-soak lease scenario with this many short sessions
    /// instead of the throughput experiment.
    pub server_soak: Option<usize>,
    /// Leased handles (`N`) the server-soak pool registers.
    pub soak_slots: usize,
    /// Operations each soak session performs while holding its lease.
    pub soak_ops: usize,
    /// Limbo budget in bytes (enables byte-budget enforcement and verdicts).
    pub limbo_budget: Option<usize>,
    /// Record latency/delay histograms and print the percentile report.
    pub telemetry: bool,
    /// Also write the telemetry report as JSON to this path (`--telemetry=PATH`).
    pub telemetry_json: Option<String>,
    /// Print the usage text and exit.
    pub help: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            structure: Structure::List,
            schemes: SchemeSelection::One(SchemeKind::QSense),
            threads: 4,
            duration: Duration::from_secs(1),
            update_pct: 50,
            key_range: None,
            inject_delay: false,
            timeline: false,
            quiescence: None,
            scan: None,
            fallback: None,
            rooster_ms: None,
            eviction_ms: None,
            era_policy: None,
            fault: None,
            server_soak: None,
            soak_slots: 8,
            soak_ops: 64,
            limbo_budget: None,
            telemetry: false,
            telemetry_json: None,
            help: false,
        }
    }
}

/// The usage text printed by `--help` and on parse errors.
pub const USAGE: &str = "\
qsense-bench — run one cell (or one comparison) of the QSense evaluation matrix

USAGE:
    qsense-bench [OPTIONS]

OPTIONS:
    --structure <list|skiplist|bst|hashmap|queue|stack>
                                              data structure        [default: list]
                                              (queue/stack run 100%-churn FIFO/LIFO
                                              workloads; --updates is forced to 100)
    --scheme <none|qsbr|ebr|he|rc|hp|cadence|qsense|paper|all>
                                              scheme or scheme set  [default: qsense]
    --threads <N>                             worker threads        [default: 4]
    --duration <SECONDS>                      measured seconds      [default: 1]
    --updates <PCT>                           update percentage     [default: 50]
    --key-range <N>                           key range             [default: per structure]
    --delay                                   delay one thread periodically (Figure 5 bottom)
    --timeline                                print a time series (throughput, in-limbo)
    --quiescence <Q>                          quiescence threshold override
    --scan <R>                                scan threshold override
    --fallback <C>                            fallback threshold override
    --rooster-ms <T>                          rooster interval override (milliseconds)
    --eviction-ms <MS>                        enable the eviction extension with this timeout
    --era-policy <static:N | adaptive[:MIN,MAX,LOW]>
                                              era-advance policy of the era schemes (he):
                                              a fixed allocations-per-tick interval, or an
                                              interval adapting between MIN and MAX driven
                                              by the LOW in-limbo low-water mark
    --fault <stalled-reader|silent-thread|leaked-handle|random-delay|all>
                                              run the fault-injection matrix instead of a
                                              throughput experiment: inject this fault (or
                                              all four) into each selected scheme and print
                                              the limbo trajectory plus the budget verdict
    --server-soak <SESSIONS>                  run the M:N lease scenario instead of a
                                              throughput experiment: SESSIONS short sessions
                                              (spread over --threads workers) each check one
                                              of --soak-slots pooled handles out of a
                                              LeasePool, run --soak-ops skip-list operations,
                                              and check it back in; reports throughput,
                                              session p50/p99/p99.9, lease waits, peak limbo
                                              and the registry shard skip/walk counters
    --soak-slots <N>                          leased handles in the soak pool [default: 8]
    --soak-ops <N>                            operations per soak session     [default: 64]
    --limbo-budget <BYTES>                    enforce a limbo byte budget (suffixes k/m ok);
                                              schemes escalate when limbo crosses it and the
                                              verdict records peak, time-over and escalations
    --telemetry[=<PATH>]                      record latency/delay histograms and print a
                                              per-scheme percentile report (p50/p90/p99/p99.9
                                              of guard op latency, scan duration and the
                                              retire->free delay) plus scan-dispatch counts;
                                              with =PATH, also write the report as JSON
    --help                                    print this text
";

fn parse_era_policy(value: &str) -> Result<EraAdvancePolicy, String> {
    if let Some(interval) = value.strip_prefix("static:") {
        let interval: usize = parse_number("--era-policy static", interval)?;
        if interval == 0 {
            return Err("--era-policy static interval must be positive".to_string());
        }
        return Ok(EraAdvancePolicy::Static(interval));
    }
    if value == "adaptive" {
        return Ok(EraAdvancePolicy::adaptive());
    }
    if let Some(params) = value.strip_prefix("adaptive:") {
        let parts: Vec<&str> = params.split(',').collect();
        if parts.len() != 3 {
            return Err(format!(
                "--era-policy adaptive expects MIN,MAX,LOW — got '{params}'"
            ));
        }
        let min_interval: usize = parse_number("--era-policy adaptive MIN", parts[0])?;
        let max_interval: usize = parse_number("--era-policy adaptive MAX", parts[1])?;
        let limbo_low_water: usize = parse_number("--era-policy adaptive LOW", parts[2])?;
        if min_interval == 0 || min_interval > max_interval {
            return Err("--era-policy adaptive requires 0 < MIN <= MAX".to_string());
        }
        return Ok(EraAdvancePolicy::Adaptive {
            min_interval,
            max_interval,
            limbo_low_water,
        });
    }
    Err(format!(
        "unknown era policy '{value}' (expected static:N, adaptive, or adaptive:MIN,MAX,LOW)"
    ))
}

fn parse_structure(value: &str) -> Result<Structure, String> {
    match value {
        "list" | "linked-list" => Ok(Structure::List),
        "skiplist" | "skip-list" => Ok(Structure::SkipList),
        "bst" | "tree" => Ok(Structure::Bst),
        "hashmap" | "hash-map" | "map" => Ok(Structure::HashMap),
        "queue" | "msqueue" | "fifo" => Ok(Structure::Queue),
        "stack" | "treiber" | "lifo" => Ok(Structure::Stack),
        other => Err(format!("unknown structure '{other}'")),
    }
}

fn parse_scheme(value: &str) -> Result<SchemeSelection, String> {
    let one = |kind| Ok(SchemeSelection::One(kind));
    match value {
        "none" | "leaky" => one(SchemeKind::None),
        "qsbr" => one(SchemeKind::Qsbr),
        "ebr" => one(SchemeKind::Ebr),
        "he" | "hazard-eras" | "ibr" => one(SchemeKind::He),
        "rc" | "refcount" => one(SchemeKind::RefCount),
        "hp" | "hazard" => one(SchemeKind::Hp),
        "cadence" => one(SchemeKind::Cadence),
        "qsense" => one(SchemeKind::QSense),
        "paper" => Ok(SchemeSelection::Paper),
        "all" => Ok(SchemeSelection::All),
        other => Err(format!("unknown scheme '{other}'")),
    }
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} expects a number, got '{value}'"))
}

fn parse_fault(value: &str) -> Result<FaultSelection, String> {
    if value == "all" {
        return Ok(FaultSelection::All);
    }
    FaultKind::parse(value)
        .map(FaultSelection::One)
        .ok_or_else(|| {
            format!(
                "unknown fault '{value}' (expected stalled-reader, silent-thread, \
                 leaked-handle, random-delay or all)"
            )
        })
}

/// Parses a byte count with an optional `k`/`m` (KiB/MiB) suffix.
fn parse_bytes(flag: &str, value: &str) -> Result<usize, String> {
    let (digits, scale) = match value.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&value[..value.len() - 1], 1024),
        Some(b'm') | Some(b'M') => (&value[..value.len() - 1], 1024 * 1024),
        _ => (value, 1),
    };
    let count: usize = parse_number(flag, digits)?;
    if count == 0 {
        return Err(format!("{flag} must be positive"));
    }
    Ok(count * scale)
}

impl CliOptions {
    /// Parses the given arguments (without the program name).
    pub fn parse<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut options = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let arg = arg.as_ref();
            let mut value_for = |flag: &str| -> Result<String, String> {
                iter.next()
                    .map(|v| v.as_ref().to_string())
                    .ok_or_else(|| format!("{flag} expects a value"))
            };
            match arg {
                "--structure" => options.structure = parse_structure(&value_for(arg)?)?,
                "--scheme" => options.schemes = parse_scheme(&value_for(arg)?)?,
                "--threads" => options.threads = parse_number(arg, &value_for(arg)?)?,
                "--duration" => {
                    let secs: f64 = parse_number(arg, &value_for(arg)?)?;
                    if secs.is_nan() || secs <= 0.0 {
                        return Err("--duration must be positive".to_string());
                    }
                    options.duration = Duration::from_secs_f64(secs);
                }
                "--updates" => {
                    let pct: u8 = parse_number(arg, &value_for(arg)?)?;
                    if pct > 100 {
                        return Err("--updates must be between 0 and 100".to_string());
                    }
                    options.update_pct = pct;
                }
                "--key-range" => options.key_range = Some(parse_number(arg, &value_for(arg)?)?),
                "--delay" => options.inject_delay = true,
                "--timeline" => options.timeline = true,
                "--quiescence" => options.quiescence = Some(parse_number(arg, &value_for(arg)?)?),
                "--scan" => options.scan = Some(parse_number(arg, &value_for(arg)?)?),
                "--fallback" => options.fallback = Some(parse_number(arg, &value_for(arg)?)?),
                "--rooster-ms" => options.rooster_ms = Some(parse_number(arg, &value_for(arg)?)?),
                "--eviction-ms" => options.eviction_ms = Some(parse_number(arg, &value_for(arg)?)?),
                "--era-policy" => options.era_policy = Some(parse_era_policy(&value_for(arg)?)?),
                "--fault" => options.fault = Some(parse_fault(&value_for(arg)?)?),
                "--server-soak" => {
                    let sessions: usize = parse_number(arg, &value_for(arg)?)?;
                    if sessions == 0 {
                        return Err("--server-soak needs at least one session".to_string());
                    }
                    options.server_soak = Some(sessions);
                }
                "--soak-slots" => {
                    let slots: usize = parse_number(arg, &value_for(arg)?)?;
                    if slots == 0 {
                        return Err("--soak-slots must be at least 1".to_string());
                    }
                    options.soak_slots = slots;
                }
                "--soak-ops" => {
                    let ops: usize = parse_number(arg, &value_for(arg)?)?;
                    if ops == 0 {
                        return Err("--soak-ops must be at least 1".to_string());
                    }
                    options.soak_ops = ops;
                }
                "--limbo-budget" => {
                    options.limbo_budget = Some(parse_bytes(arg, &value_for(arg)?)?)
                }
                "--help" | "-h" => options.help = true,
                // `--telemetry` takes an *optional* value, so it uses the
                // `=PATH` form rather than a following argument (a following
                // argument would be ambiguous with the next flag).
                "--telemetry" => options.telemetry = true,
                other => {
                    if let Some(path) = other.strip_prefix("--telemetry=") {
                        if path.is_empty() {
                            return Err("--telemetry= expects a file path".to_string());
                        }
                        options.telemetry = true;
                        options.telemetry_json = Some(path.to_string());
                    } else {
                        return Err(format!("unknown flag '{other}'\n\n{USAGE}"));
                    }
                }
            }
        }
        if options.threads == 0 {
            return Err("--threads must be at least 1".to_string());
        }
        Ok(options)
    }

    /// The operation mix implied by `--updates` (inserts and deletes split evenly,
    /// as in the paper). The FIFO/LIFO structures have no membership test, so
    /// they always run the 100%-churn mix regardless of `--updates`.
    pub fn op_mix(&self) -> OpMix {
        if matches!(self.structure, Structure::Queue | Structure::Stack) {
            return OpMix::churn();
        }
        let updates = self.update_pct;
        let inserts = updates / 2;
        let deletes = updates - inserts;
        OpMix::new(100 - updates, inserts, deletes)
    }

    /// The key range to use (explicit override or the structure's default).
    pub fn effective_key_range(&self) -> u64 {
        self.key_range
            .unwrap_or_else(|| self.structure.default_key_range())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        CliOptions::parse(args.iter().copied())
    }

    #[test]
    fn defaults_match_the_documented_values() {
        let options = parse(&[]).unwrap();
        assert_eq!(options.structure, Structure::List);
        assert_eq!(options.schemes, SchemeSelection::One(SchemeKind::QSense));
        assert_eq!(options.threads, 4);
        assert_eq!(options.update_pct, 50);
        assert!(!options.inject_delay);
        assert!(!options.timeline);
        assert!(!options.help);
        assert_eq!(
            options.effective_key_range(),
            Structure::List.default_key_range()
        );
    }

    #[test]
    fn every_flag_is_recognized() {
        let options = parse(&[
            "--structure",
            "hashmap",
            "--scheme",
            "all",
            "--threads",
            "8",
            "--duration",
            "0.5",
            "--updates",
            "10",
            "--key-range",
            "5000",
            "--delay",
            "--timeline",
            "--quiescence",
            "32",
            "--scan",
            "64",
            "--fallback",
            "1024",
            "--rooster-ms",
            "5",
            "--eviction-ms",
            "100",
            "--era-policy",
            "adaptive:4,256,512",
        ])
        .unwrap();
        assert_eq!(options.structure, Structure::HashMap);
        assert_eq!(options.schemes, SchemeSelection::All);
        assert_eq!(options.threads, 8);
        assert_eq!(options.duration, Duration::from_millis(500));
        assert_eq!(options.update_pct, 10);
        assert_eq!(options.key_range, Some(5_000));
        assert!(options.inject_delay);
        assert!(options.timeline);
        assert_eq!(options.quiescence, Some(32));
        assert_eq!(options.scan, Some(64));
        assert_eq!(options.fallback, Some(1_024));
        assert_eq!(options.rooster_ms, Some(5));
        assert_eq!(options.eviction_ms, Some(100));
        assert_eq!(
            options.era_policy,
            Some(EraAdvancePolicy::Adaptive {
                min_interval: 4,
                max_interval: 256,
                limbo_low_water: 512,
            })
        );
        assert_eq!(options.effective_key_range(), 5_000);
    }

    #[test]
    fn era_policy_flag_parses_every_shape() {
        assert_eq!(
            parse(&["--era-policy", "static:32"]).unwrap().era_policy,
            Some(EraAdvancePolicy::Static(32))
        );
        assert_eq!(
            parse(&["--era-policy", "adaptive"]).unwrap().era_policy,
            Some(EraAdvancePolicy::adaptive())
        );
        assert_eq!(parse(&[]).unwrap().era_policy, None);
        assert!(parse(&["--era-policy", "static:0"])
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["--era-policy", "adaptive:9,3,0"])
            .unwrap_err()
            .contains("MIN <= MAX"));
        assert!(parse(&["--era-policy", "adaptive:1,2"])
            .unwrap_err()
            .contains("MIN,MAX,LOW"));
        assert!(parse(&["--era-policy", "sometimes"])
            .unwrap_err()
            .contains("unknown era policy"));
    }

    #[test]
    fn scheme_aliases_and_sets_expand_correctly() {
        assert_eq!(
            parse(&["--scheme", "rc"]).unwrap().schemes.schemes(),
            vec![SchemeKind::RefCount]
        );
        assert_eq!(
            parse(&["--scheme", "paper"])
                .unwrap()
                .schemes
                .schemes()
                .len(),
            5
        );
        assert_eq!(
            parse(&["--scheme", "he"]).unwrap().schemes.schemes(),
            vec![SchemeKind::He]
        );
        assert_eq!(
            parse(&["--scheme", "hazard-eras"])
                .unwrap()
                .schemes
                .schemes(),
            vec![SchemeKind::He]
        );
        assert_eq!(
            parse(&["--scheme", "all"]).unwrap().schemes.schemes().len(),
            8
        );
    }

    #[test]
    fn op_mix_splits_updates_evenly_and_sums_to_100() {
        let options = parse(&["--updates", "25"]).unwrap();
        let mix = options.op_mix();
        assert_eq!(mix.read_pct, 75);
        assert_eq!(mix.insert_pct + mix.delete_pct, 25);
        let all_reads = parse(&["--updates", "0"]).unwrap().op_mix();
        assert_eq!(all_reads.read_pct, 100);
    }

    #[test]
    fn queue_and_stack_structures_parse_and_force_churn() {
        for (alias, structure) in [
            ("queue", Structure::Queue),
            ("msqueue", Structure::Queue),
            ("fifo", Structure::Queue),
            ("stack", Structure::Stack),
            ("treiber", Structure::Stack),
            ("lifo", Structure::Stack),
        ] {
            let options = parse(&["--structure", alias]).unwrap();
            assert_eq!(options.structure, structure, "alias {alias}");
            assert_eq!(options.op_mix(), OpMix::churn(), "alias {alias}");
        }
        // --updates is ignored for the FIFO/LIFO structures...
        let options = parse(&["--structure", "queue", "--updates", "10"]).unwrap();
        assert_eq!(options.op_mix(), OpMix::churn());
        // ...but still honoured for the sets.
        let options = parse(&["--structure", "list", "--updates", "10"]).unwrap();
        assert_eq!(options.op_mix(), OpMix::updates_10());
    }

    #[test]
    fn errors_are_reported_with_context() {
        assert!(parse(&["--structure", "btree"])
            .unwrap_err()
            .contains("unknown structure"));
        assert!(parse(&["--scheme", "gc"])
            .unwrap_err()
            .contains("unknown scheme"));
        assert!(parse(&["--threads"])
            .unwrap_err()
            .contains("expects a value"));
        assert!(parse(&["--threads", "zero"])
            .unwrap_err()
            .contains("expects a number"));
        assert!(parse(&["--threads", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["--updates", "150"])
            .unwrap_err()
            .contains("between 0 and 100"));
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("unknown flag"));
    }

    #[test]
    fn help_flag_is_sticky() {
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["-h"]).unwrap().help);
    }

    #[test]
    fn fault_flag_parses_every_kind_and_the_matrix() {
        assert_eq!(parse(&[]).unwrap().fault, None);
        for kind in FaultKind::all() {
            assert_eq!(
                parse(&["--fault", kind.name()]).unwrap().fault,
                Some(FaultSelection::One(kind))
            );
        }
        assert_eq!(
            parse(&["--fault", "all"]).unwrap().fault,
            Some(FaultSelection::All)
        );
        assert_eq!(FaultSelection::All.faults().len(), 4);
        assert!(parse(&["--fault", "gremlin"])
            .unwrap_err()
            .contains("unknown fault"));
    }

    #[test]
    fn server_soak_flags_parse_with_defaults_and_overrides() {
        let options = parse(&[]).unwrap();
        assert_eq!(options.server_soak, None);
        assert_eq!(options.soak_slots, 8);
        assert_eq!(options.soak_ops, 64);
        let options = parse(&[
            "--server-soak",
            "2000",
            "--soak-slots",
            "4",
            "--soak-ops",
            "128",
        ])
        .unwrap();
        assert_eq!(options.server_soak, Some(2_000));
        assert_eq!(options.soak_slots, 4);
        assert_eq!(options.soak_ops, 128);
        assert!(parse(&["--server-soak", "0"])
            .unwrap_err()
            .contains("at least one session"));
        assert!(parse(&["--soak-slots", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["--soak-ops", "0"])
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn telemetry_flag_parses_with_and_without_a_path() {
        let options = parse(&[]).unwrap();
        assert!(!options.telemetry);
        assert_eq!(options.telemetry_json, None);
        let options = parse(&["--telemetry"]).unwrap();
        assert!(options.telemetry);
        assert_eq!(options.telemetry_json, None);
        let options = parse(&["--telemetry=out.json"]).unwrap();
        assert!(options.telemetry);
        assert_eq!(options.telemetry_json.as_deref(), Some("out.json"));
        assert!(parse(&["--telemetry="])
            .unwrap_err()
            .contains("expects a file path"));
        // The bare flag must not swallow a following flag as its value.
        let options = parse(&["--telemetry", "--timeline"]).unwrap();
        assert!(options.telemetry && options.timeline);
    }

    #[test]
    fn limbo_budget_accepts_byte_counts_with_suffixes() {
        assert_eq!(parse(&[]).unwrap().limbo_budget, None);
        assert_eq!(
            parse(&["--limbo-budget", "65536"]).unwrap().limbo_budget,
            Some(65_536)
        );
        assert_eq!(
            parse(&["--limbo-budget", "256k"]).unwrap().limbo_budget,
            Some(256 * 1024)
        );
        assert_eq!(
            parse(&["--limbo-budget", "2M"]).unwrap().limbo_budget,
            Some(2 * 1024 * 1024)
        );
        assert!(parse(&["--limbo-budget", "0"])
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["--limbo-budget", "lots"])
            .unwrap_err()
            .contains("expects a number"));
    }
}
