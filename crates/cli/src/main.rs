//! `qsense-bench`: run any cell of the QSense evaluation matrix from the command
//! line.
//!
//! The figure-reproduction benches in `crates/bench` regenerate the paper's plots
//! with fixed parameters; this binary is the free-form counterpart a user points at
//! their own workload: pick a structure, a scheme (or a set of schemes to compare),
//! an operation mix, thread count and duration, optionally inject the paper's
//! periodic delay, and read back throughput, reclamation counters and — because the
//! binary installs a counting allocator — the actual heap footprint.
//!
//! Examples:
//!
//! ```text
//! qsense-bench --structure list --scheme paper --threads 8 --duration 2
//! qsense-bench --structure hashmap --scheme all --updates 10
//! qsense-bench --scheme qsense --delay --timeline --duration 10
//! qsense-bench --scheme qsense --delay --eviction-ms 200
//! qsense-bench --scheme all --fault all --limbo-budget 256k
//! ```

mod args;

use args::{CliOptions, SchemeSelection, USAGE};
use bench::json::{write_report, JsonObject};
use reclaim_core::CountingAllocator;
use std::sync::Arc;
use std::time::Duration;
use workload::{
    default_fault_config, make_set, report, run_experiment, run_fault_for, run_server_soak_with,
    DelaySchedule, Experiment, FaultPlan, RunResult, SchemeKind, ServerSoakSpec, WorkloadSpec,
};

/// Heap tracking for the whole process: the experiments below report live/peak
/// bytes, which is how the paper's "QSBR runs out of memory" failure manifests to
/// the operating system.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn build_config(options: &CliOptions) -> reclaim_core::SmrConfig {
    let mut config = workload::default_bench_config(options.threads + 2);
    if let Some(q) = options.quiescence {
        config = config.with_quiescence_threshold(q);
    }
    if let Some(r) = options.scan {
        config = config.with_scan_threshold(r);
    }
    if let Some(c) = options.fallback {
        config = config.with_fallback_threshold(c);
    }
    if let Some(t) = options.rooster_ms {
        config = config.with_rooster_interval(Duration::from_millis(t));
    }
    if let Some(ms) = options.eviction_ms {
        config = config.with_eviction_timeout(Some(Duration::from_millis(ms)));
    }
    if let Some(policy) = options.era_policy {
        config = config.with_era_policy(policy);
    }
    if options.telemetry {
        config = config.with_telemetry(true);
    }
    config.with_limbo_budget(options.limbo_budget)
}

/// The fault matrix's reclamation configuration: the shared fault defaults,
/// with the same CLI overrides the throughput path honours.
fn build_fault_config(options: &CliOptions) -> reclaim_core::SmrConfig {
    let mut config = default_fault_config(options.limbo_budget);
    if let Some(q) = options.quiescence {
        config = config.with_quiescence_threshold(q);
    }
    if let Some(r) = options.scan {
        config = config.with_scan_threshold(r);
    }
    if let Some(c) = options.fallback {
        config = config.with_fallback_threshold(c);
    }
    if let Some(t) = options.rooster_ms {
        config = config.with_rooster_interval(Duration::from_millis(t));
    }
    if let Some(ms) = options.eviction_ms {
        config = config.with_eviction_timeout(Some(Duration::from_millis(ms)));
    }
    if let Some(policy) = options.era_policy {
        config = config.with_era_policy(policy);
    }
    config
}

/// Runs the scheme × fault matrix and prints one verdict row per cell.
fn run_fault_matrix(options: &CliOptions, faults: &[workload::FaultKind]) {
    println!(
        "{:<8} {:<15} {:>12} {:>12} {:>10} {:>12} {:>8}",
        "scheme", "fault", "peak KiB", "end nodes", "esc.", "over (ms)", "bounded"
    );
    for scheme in options.schemes.schemes() {
        for &fault in faults {
            let plan = FaultPlan::new(fault);
            let result = run_fault_for(scheme, build_fault_config(options), &plan);
            let verdict = result.verdict.unwrap_or_default();
            println!(
                "{:<8} {:<15} {:>12.1} {:>12} {:>10} {:>12.2} {:>8}",
                result.scheme,
                fault.name(),
                result.peak_limbo_bytes as f64 / 1024.0,
                result.end_limbo,
                verdict.escalations(),
                verdict.time_over_budget.as_secs_f64() * 1e3,
                if options.limbo_budget.is_none() {
                    "n/a"
                } else if verdict.within_budget() {
                    "yes"
                } else {
                    "no"
                },
            );
        }
    }
}

/// One JSON row of the `--telemetry=<path>` report: the percentile quadruples
/// of all three histograms plus the scan-dispatch class counters, flat so the
/// shared `BENCH_*.json` scanner can parse it (keyed by `"scheme"`).
fn telemetry_json_row(result: &RunResult) -> JsonObject {
    let summary = result.telemetry.unwrap_or_default();
    let (op50, op90, op99, op999) = summary.op_latency_ns.quantiles();
    let (sc50, sc90, sc99, sc999) = summary.scan_ns.quantiles();
    let (rd50, rd90, rd99, rd999) = summary.reclaim_delay_us.quantiles();
    JsonObject::new()
        .str_field("scheme", &result.scheme)
        .str_field("structure", &result.structure)
        .int_field("threads", result.threads as u64)
        .int_field("op_latency_p50_ns", op50)
        .int_field("op_latency_p90_ns", op90)
        .int_field("op_latency_p99_ns", op99)
        .int_field("op_latency_p999_ns", op999)
        .int_field("op_latency_count", summary.op_latency_ns.count())
        .int_field("scan_p50_ns", sc50)
        .int_field("scan_p90_ns", sc90)
        .int_field("scan_p99_ns", sc99)
        .int_field("scan_p999_ns", sc999)
        .int_field("scan_count", summary.scan_ns.count())
        .int_field("reclaim_delay_p50_us", rd50)
        .int_field("reclaim_delay_p90_us", rd90)
        .int_field("reclaim_delay_p99_us", rd99)
        .int_field("reclaim_delay_p999_us", rd999)
        .int_field("reclaim_delay_count", summary.reclaim_delay_us.count())
        .int_field("scan_wholesale", result.stats.scan_wholesale)
        .int_field("scan_skips", result.stats.scan_skips)
        .int_field("scan_walks", result.stats.scan_walks)
        .int_field("shard_skips", result.stats.shard_skips)
        .int_field("shard_walks", result.stats.shard_walks)
}

/// Runs the M:N lease scenario for every selected scheme and prints one row
/// per scheme: throughput, session-latency percentiles, lease contention, and
/// the registry's shard-dispatch counters (the sharded registry's proof that
/// scan cost tracks *occupied shards*, not capacity).
fn run_server_soak_matrix(options: &CliOptions, sessions: usize) {
    println!(
        "{:<8} {:>9} {:>6} {:>7} {:>10} {:>11} {:>10} {:>10} {:>10} {:>11} {:>12} {:>12}",
        "scheme",
        "sessions",
        "slots",
        "workers",
        "Mops/s",
        "sessions/s",
        "p50 (us)",
        "p99 (us)",
        "p99.9 (us)",
        "waits",
        "peak-limbo B",
        "skips/walks"
    );
    for scheme in options.schemes.schemes() {
        let spec = ServerSoakSpec {
            sessions,
            workers: options.threads,
            slots: options.soak_slots,
            ops_per_session: options.soak_ops,
            key_range: options.effective_key_range(),
            // Keep the registry much larger than the pool: the whole point of
            // the sharded dispatch is that the capacity is cheap.
            max_threads: (options.soak_slots + 2).max(64),
            ..ServerSoakSpec::new(scheme)
        };
        let result = run_server_soak_with(&spec, build_config(options));
        println!(
            "{:<8} {:>9} {:>6} {:>7} {:>10.3} {:>11.0} {:>10.1} {:>10.1} {:>10.1} {:>11} {:>12} {:>7}/{}",
            result.scheme,
            result.sessions,
            result.slots,
            result.workers,
            result.mops(),
            result.sessions_per_sec(),
            result.session_percentile_us(0.50),
            result.session_percentile_us(0.99),
            result.session_percentile_us(0.999),
            result.lease_waits,
            result.stats.peak_limbo_bytes,
            result.stats.shard_skips,
            result.stats.shard_walks,
        );
    }
}

fn run_one(options: &CliOptions, scheme: SchemeKind) -> RunResult {
    let spec = WorkloadSpec::new(options.effective_key_range(), options.op_mix());
    let set = make_set(options.structure, scheme, build_config(options));
    let run_secs = options.duration.as_secs_f64();
    run_experiment(&Experiment {
        set: Arc::clone(&set),
        spec,
        threads: options.threads,
        duration: options.duration,
        delay: options
            .inject_delay
            .then(|| DelaySchedule::paper_scaled(run_secs / 100.0)),
        sample_interval: options
            .timeline
            .then(|| Duration::from_secs_f64((run_secs / 40.0).max(0.05))),
        limbo_cap: None,
    })
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let options = match CliOptions::parse(raw.iter().map(String::as_str)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    if options.help {
        print!("{USAGE}");
        return;
    }

    if let Some(sessions) = options.server_soak {
        println!(
            "qsense-bench: server soak, {:?}, {} sessions over {} leased slots, {} workers, {} ops/session",
            options.schemes, sessions, options.soak_slots, options.threads, options.soak_ops,
        );
        run_server_soak_matrix(&options, sessions);
        return;
    }

    if let Some(selection) = options.fault {
        println!(
            "qsense-bench: fault matrix, {:?}, budget {}",
            options.schemes,
            options
                .limbo_budget
                .map(|b| format!("{:.0} KiB", b as f64 / 1024.0))
                .unwrap_or_else(|| "none (tracking only)".to_string()),
        );
        run_fault_matrix(&options, &selection.faults());
        return;
    }

    let mix = options.op_mix();
    println!(
        "qsense-bench: {} / {:?}, {} threads, {:.1}s, {}% reads / {}% inserts / {}% deletes, key range {}{}{}{}",
        options.structure.name(),
        options.schemes,
        options.threads,
        options.duration.as_secs_f64(),
        mix.read_pct,
        mix.insert_pct,
        mix.delete_pct,
        options.effective_key_range(),
        if options.inject_delay { ", periodic delay injected" } else { "" },
        if options.eviction_ms.is_some() { ", eviction extension on" } else { "" },
        match options.era_policy {
            Some(reclaim_core::EraAdvancePolicy::Static(_)) => ", era policy: static",
            Some(reclaim_core::EraAdvancePolicy::Adaptive { .. }) => ", era policy: adaptive",
            None => "",
        },
    );

    let schemes = options.schemes.schemes();
    let mut baseline_mops = None;
    let mut telemetry_rows_json = Vec::new();
    for scheme in schemes {
        let allocated_before = ALLOC.allocated_bytes();
        let result = run_one(&options, scheme);
        let allocated_during = ALLOC.allocated_bytes() - allocated_before;
        if options.timeline {
            report::print_timeline(&result);
        }
        println!("{}", report::throughput_row(&result, baseline_mops));
        println!(
            "{:<12} heap: {:.2} MiB allocated during the run, {:.2} MiB process peak; scans = {}, quiescent states = {}, switches = {}/{}",
            "",
            allocated_during as f64 / (1024.0 * 1024.0),
            ALLOC.peak_bytes() as f64 / (1024.0 * 1024.0),
            result.stats.scans,
            result.stats.quiescent_states,
            result.stats.fallback_switches,
            result.stats.fast_path_switches,
        );
        if options.limbo_budget.is_some() {
            if let Some(row) = report::budget_row(&result) {
                println!("{row}");
            }
        }
        if options.telemetry {
            for row in report::telemetry_rows(&result) {
                println!("{row}");
            }
            println!("{}", report::dispatch_row(&result));
            telemetry_rows_json.push(telemetry_json_row(&result));
        }
        if matches!(
            options.schemes,
            SchemeSelection::Paper | SchemeSelection::All
        ) && scheme == SchemeKind::None
        {
            baseline_mops = Some(result.mops());
        }
    }

    if let Some(path) = &options.telemetry_json {
        let command = format!("qsense-bench {}", raw.join(" "));
        let meta = [(
            "units",
            "\"latency percentiles are log2-bucket upper bounds (<= 2x): \
             op/scan in nanoseconds, retire->free delay in microseconds\""
                .to_string(),
        )];
        let path = std::path::Path::new(path);
        match write_report(path, "cli_telemetry", &command, &meta, &telemetry_rows_json) {
            Ok(()) => println!("telemetry report written to {}", path.display()),
            Err(error) => {
                eprintln!("error: failed to write {}: {error}", path.display());
                std::process::exit(1);
            }
        }
    }
}
