//! The Hazard-Eras scheme object and per-thread handle.

use crate::era::{EraRecord, INACTIVE_LOWER};
use reclaim_core::retired::DropFn;
use reclaim_core::stats::{StatStripe, StatsSnapshot};
use reclaim_core::{
    BudgetGovernor, BudgetVerdict, CachePadded, CapacityExhausted, Era, EraAdvancePolicy, EraPacer,
    HandleCache, HandleTelemetry, ParkedChain, Registry, RetiredPtr, SegBag, SegPool, SlotId, Smr,
    SmrConfig, SmrHandle, Telemetry,
};
use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of per-retire-era limbo chains a handle keeps. Nodes retired at era
/// `R` land in chain `R % ERA_BUCKETS`, whose tag is the **maximum** retire era
/// it holds — colliding tags widen the chain's conservative interval instead of
/// forcing a (possibly unsafe) drain, so correctness never depends on the
/// bucket count; more buckets only make the wholesale-free fast path finer
/// grained.
const ERA_BUCKETS: usize = 8;

/// One limbo chain: every node in `bag` was retired at an era `<= tag`, so the
/// chain's conservative lifetime interval is `[birth_of_each_node, tag]`.
///
/// `min_birth`/`max_birth` bracket the birth eras in the bag so a scan can
/// dispatch the whole chain in O(1): free it wholesale when even the oldest
/// birth clears every reachable reservation, or *skip the walk entirely* when
/// even the youngest birth is covered. The skip is what keeps a blocked bag —
/// e.g. unstamped (birth-0) nodes pinned by a stalled reader — from turning
/// every scan into an O(bag) walk. Both bounds are **recomputed from the
/// survivors** during the walk a partial reclaim already performs
/// ([`SegBag::reclaim_if_visit`]), so a chain whose survivors are all old
/// takes the skip fast path on the very next scan instead of re-walking the
/// bag until it fully drains.
struct EraChain {
    tag: Era,
    min_birth: Era,
    max_birth: Era,
    bag: SegBag,
}

/// The reusable per-handle resources recycled through the scheme's
/// [`HandleCache`]: the segment pool and the reservation-snapshot scratch.
struct HeParts {
    pool: SegPool,
    reservations: Vec<(Era, Era)>,
}

/// Hazard-Eras / interval-based reclamation (2GE-style IBR) — the eighth scheme
/// of the comparison matrix.
///
/// The design point between the epoch schemes and hazard pointers:
///
/// * like hazard pointers it is **robust** — a reader stalled mid-operation
///   pins only the nodes whose birth era does not exceed its announced
///   interval, i.e. roughly the nodes that already existed when it stalled;
///   nodes allocated afterwards keep getting freed (QSBR/EBR, by contrast, stop
///   reclaiming *everything*);
/// * like the epoch schemes it **amortizes protection** — one era announcement
///   per operation (a store to an owned padded line plus one fence) instead of
///   one fenced store per node traversed; mid-operation the announcement is
///   refreshed only when the global era actually advanced, which happens once
///   per era-advance interval of allocations — a constant under
///   [`reclaim_core::EraAdvancePolicy::Static`], limbo-adaptive under
///   [`reclaim_core::EraAdvancePolicy::Adaptive`] (see [`EraPacer`]) — not
///   per node.
///
/// ## Protocol
///
/// * **allocation** ([`SmrHandle::alloc_node`]): stamp the node with the
///   current era (its *birth era*); every [`EraPacer::current_interval`]
///   allocations, advance the global era clock.
/// * **begin_op**: announce the point reservation `[e, e]` (one fenced store).
/// * **protect**: if the global era moved since the announcement, extend the
///   reservation's upper bound and fence; the caller then re-validates the
///   reference as usual. The fence-then-revalidate pairing is exactly classic
///   HP's, applied to the era announcement instead of a node address: if the
///   validation succeeds, the node was still reachable *after* the announcement
///   became visible, so its unlinker's later era reads and reservation scan
///   both observe an interval that covers the reference.
/// * **retire**: stamp the node with a **fresh** load of the era clock (the
///   *retire era*) and push it into the matching era bucket. The load must be
///   fresh, not the cached announcement: any reader still holding the node
///   announced some era `e` before this retire, and monotonicity gives
///   `birth <= e <= retire-era-read-now` — the cached announcement could
///   predate `e` and under-stamp the interval.
/// * **scan** (every `scan_threshold` retires): snapshot all `N` reservations
///   — O(N) era reads, not the O(N·K) pointer snapshot of the HP family — and
///   free every chain whose tag no active reservation reaches (`reclaim_all`,
///   wholesale); for blocked chains, free the nodes born *after* every
///   reservation that reaches the chain (`birth > max{upper : lower <= tag}`),
///   O(1) per node after the O(N) precomputation.
///
/// The retire path flows through the same [`SegBag`]/[`SegPool`] segment chains
/// as every other scheme, so steady-state retire/scan/reclaim is
/// allocation-free, parked leftovers of dying handles are adopted by survivors,
/// and the pool + scratch are recycled to the next registrant through the
/// scheme's [`HandleCache`].
pub struct He {
    config: SmrConfig,
    /// The global era clock plus the policy that paces its advances
    /// (static interval or limbo-adaptive; see [`EraPacer`]).
    pacer: EraPacer,
    registry: Registry<EraRecord>,
    /// Counter stripe for events with no owning slot (parked-bag frees at drop).
    scheme_stats: CachePadded<StatStripe>,
    /// Limbo leftovers of exited threads (see [`ParkedChain`]).
    parked: ParkedChain,
    /// Pools + scratch buffers of exited threads, adopted by the next
    /// registrant so handle churn is allocation-free after the first wave.
    handle_cache: HandleCache<HeParts>,
    /// Limbo-byte accounting and the budget escalation ladder (forced scans
    /// plus byte-driven pacer boosts; see [`pacer_in_bytes`](Self)).
    governor: BudgetGovernor,
    /// When true, the pacer's limbo aggregate is denominated in **bytes**
    /// instead of nodes: an adaptive policy combined with a byte budget
    /// re-anchors the pacer's low-water mark at a quarter of the budget, so
    /// era cadence reacts to the quantity the budget is written in. Off
    /// (node denomination, the PR 5 behaviour) when either is absent.
    pacer_in_bytes: bool,
    /// Telemetry histograms (op latency, scan duration, retire→free delay).
    telemetry: Arc<Telemetry>,
}

impl He {
    /// Creates a Hazard-Eras scheme with the given configuration.
    pub fn new(config: SmrConfig) -> Arc<Self> {
        let registry = Registry::new(config.max_threads, |_| EraRecord::new());
        let handle_cache = HandleCache::with_capacity(config.max_threads);
        let pacer = EraPacer::new(config.era_policy);
        let governor = BudgetGovernor::new(config.limbo_budget, config.clock.clone());
        let pacer_in_bytes =
            governor.enforcing() && matches!(config.era_policy, EraAdvancePolicy::Adaptive { .. });
        if pacer_in_bytes {
            pacer.set_limbo_low_water(((governor.budget_bytes() / 4) as usize).max(1));
        }
        let telemetry = Arc::new(Telemetry::from_config(&config));
        Arc::new(Self {
            config,
            pacer,
            registry,
            scheme_stats: CachePadded::new(StatStripe::new()),
            parked: ParkedChain::new(),
            handle_cache,
            governor,
            pacer_in_bytes,
            telemetry,
        })
    }

    /// Creates a Hazard-Eras scheme with default configuration.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(SmrConfig::default())
    }

    /// The configuration this scheme was created with.
    pub fn config(&self) -> &SmrConfig {
        &self.config
    }

    /// The current global era (tests and diagnostics).
    pub fn current_era(&self) -> Era {
        self.pacer.current()
    }

    /// The era pacer (tests and diagnostics): exposes the current
    /// allocations-per-tick interval and the scheme-wide limbo estimate.
    pub fn pacer(&self) -> &EraPacer {
        &self.pacer
    }

    /// Number of handle-resource bundles currently parked for reuse (tests).
    pub fn cached_handle_parts(&self) -> usize {
        self.handle_cache.parked()
    }
}

impl Smr for He {
    type Handle = HeHandle;

    fn try_register(self: &Arc<Self>) -> Result<HeHandle, CapacityExhausted> {
        let slot = self.registry.try_acquire().map_err(|e| CapacityExhausted {
            scheme: "he",
            capacity: e.capacity,
        })?;
        // A fresh tenant must not inherit the previous tenant's reservation.
        self.registry.get_mine(slot).deactivate();
        let parts = self.handle_cache.adopt().unwrap_or_else(|| HeParts {
            // Pre-warm for the scan threshold (capped, as in the HP family) so
            // even the first bag fill recycles instead of allocating.
            pool: SegPool::with_node_capacity((self.config.scan_threshold + 1).min(2048)),
            reservations: Vec::with_capacity(self.config.max_threads),
        });
        let stripe = EraPacer::stripe_for(slot.shard());
        Ok(HeHandle {
            scheme: Arc::clone(self),
            slot,
            stripe,
            limbo: std::array::from_fn(|_| EraChain {
                tag: 0,
                min_birth: 0,
                max_birth: 0,
                bag: SegBag::new(),
            }),
            pool: parts.pool,
            reservations: parts.reservations,
            active: false,
            announced_upper: 0,
            allocs_since_tick: 0,
            retires_since_scan: 0,
            limbo_reported: 0,
            budget_stripe: BudgetGovernor::stripe_for(slot.shard()),
            budget_reported: 0,
            scan_wholesale: 0,
            scan_skips: 0,
            scan_walks: 0,
            tele: HandleTelemetry::attach(&self.telemetry),
        })
    }

    fn name(&self) -> &'static str {
        "he"
    }

    fn stats(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        self.registry.merge_stats(&mut snap);
        self.scheme_stats.merge_into(&mut snap);
        snap.peak_limbo_bytes = self.governor.peak_bytes();
        snap
    }

    fn budget_verdict(&self) -> Option<BudgetVerdict> {
        Some(self.governor.verdict())
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.telemetry)
    }
}

impl Drop for He {
    fn drop(&mut self) {
        // All handles are gone (each holds an Arc<Self>), so no reservation is
        // announced and no thread can reach a parked node.
        // SAFETY: parked nodes were retired by departed handles and survive until a scan proves them unprotected.
        let (freed, freed_bytes) = unsafe { self.parked.drain_all() };
        self.scheme_stats.add_freed(freed as u64);
        self.scheme_stats.add_freed_bytes(freed_bytes as u64);
        self.governor.note_parked(-(freed_bytes as i64));
    }
}

/// Per-thread handle for [`He`].
pub struct HeHandle {
    scheme: Arc<He>,
    slot: SlotId,
    limbo: [EraChain; ERA_BUCKETS],
    /// Recycled segments shared by all era buckets.
    pool: SegPool,
    /// Reusable snapshot buffer for the `N` era reservations, sized at
    /// registration (or adopted from the handle cache) so scans never allocate.
    reservations: Vec<(Era, Era)>,
    /// Whether the owner is inside an operation (handle-local mirror of the
    /// shared reservation, so `protect` can skip the shared load path cheaply
    /// and `retire` never confuses an out-of-op state for an announced one).
    active: bool,
    /// The era last published as the reservation's upper bound; `protect`
    /// re-publishes only when the global era moved past it.
    announced_upper: Era,
    /// Limbo stripe of the scheme's [`EraPacer`] this handle reports into.
    stripe: usize,
    /// Allocations since the last era tick this handle caused. Reset on
    /// `flush` (whose scan just ticked the era) so a partial count never
    /// carries a phantom tick across a flush or a handle generation.
    allocs_since_tick: usize,
    retires_since_scan: usize,
    /// In-limbo figure as last reported to the pacer's striped aggregate
    /// (adaptive policy only; the pacer keeps this cursor exact across scans
    /// and retracts it wholesale at handle exit). Denominated in nodes, or in
    /// bytes when the scheme runs the pacer in byte mode.
    limbo_reported: usize,
    /// This handle's stripe in the scheme's [`BudgetGovernor`].
    budget_stripe: usize,
    /// Local-bytes figure last pushed into the governor (delta-report cursor).
    budget_reported: usize,
    /// Diagnostics: chains dispatched wholesale (O(1) `reclaim_all`) by this
    /// handle's scans.
    scan_wholesale: u64,
    /// Diagnostics: chains whose walk was skipped (every birth covered).
    scan_skips: u64,
    /// Diagnostics: chains walked node-by-node (O(bag) partial reclaim).
    scan_walks: u64,
    /// Telemetry recording cursor (stripe + op-sampling counter).
    tele: HandleTelemetry,
}

impl HeHandle {
    fn record(&self) -> &EraRecord {
        self.scheme.registry.get_mine(self.slot)
    }

    fn stats(&self) -> &StatStripe {
        self.scheme.registry.stats(self.slot)
    }

    /// Total retired-but-unreclaimed nodes across the era buckets.
    pub fn limbo_size(&self) -> usize {
        self.limbo.iter().map(|chain| chain.bag.len()).sum()
    }

    /// Total stamped bytes across the era buckets.
    pub fn limbo_bytes(&self) -> usize {
        self.limbo.iter().map(|chain| chain.bag.bytes()).sum()
    }

    /// Diagnostics: how this handle's scans dispatched era chains, as
    /// `(wholesale frees, skipped walks, node-by-node walks)`. The first two
    /// are the O(1) fast paths; the third is the O(bag) partial reclaim. Used
    /// by the tests that pin the cost class of blocked bags (a chain whose
    /// survivors are all old must take a fast path, not re-walk every scan).
    ///
    /// The same three classes are also reported scheme-wide — by every scheme,
    /// not just HE — through [`StatsSnapshot::scan_wholesale`],
    /// [`StatsSnapshot::scan_skips`] and [`StatsSnapshot::scan_walks`]; this
    /// accessor remains for per-handle assertions.
    pub fn scan_dispatch_counts(&self) -> (u64, u64, u64) {
        (self.scan_wholesale, self.scan_skips, self.scan_walks)
    }

    /// Publishes (or extends) the reservation to cover `era` and fences, so the
    /// caller's subsequent validation load happens after the announcement is
    /// visible — the HP publication argument, per era change instead of per
    /// node.
    fn announce(&mut self, era: Era) {
        if self.active {
            self.record().extend_upper(era);
        } else {
            self.record().activate(era);
            self.active = true;
        }
        fence(Ordering::SeqCst);
        self.announced_upper = era;
    }

    /// One reclamation pass: snapshot the reservations, then walk the era
    /// buckets freeing whatever no reservation can still reach (see the scheme
    /// docs for the overlap argument).
    fn scan(&mut self) {
        self.stats().add_scan();
        // Advance the era so the generation the current reservations announce
        // can age out even in allocation-free (pure-remove) workloads; without
        // this, a retire-only phase would never see `lower > tag` become true.
        self.scheme.pacer.advance();
        // That advance IS this handle's tick: drop any partial allocation
        // count so the next allocation tick needs a full interval again.
        // Without the reset, every scan (threshold-triggered, flush or drop)
        // is followed by a phantom near-complete allocation tick and the era
        // cadence drifts away from the policy.
        self.allocs_since_tick = 0;
        self.reservations.clear();
        // Claimed slots only, so wholly-vacant shards cost one bitmap probe:
        // a vacant slot's record is always inactive (drop deactivates before
        // the release-ordered bitmap clear publishes the slot), and a
        // reservation covering any node in this handle's limbo was announced
        // before that node's unlink — hence its slot's claim bit, set even
        // earlier, is visible to this walk (the registry's scan-skip
        // argument).
        for (_, record) in self.scheme.registry.iter_claimed() {
            let (lower, upper) = record.load();
            if lower != INACTIVE_LOWER {
                self.reservations.push((lower, upper));
            }
        }
        let bytes_before = self.limbo_bytes();
        // Clone the Arc so the stats/observer borrows are independent of `self`
        // (the walk below needs `&mut self.limbo` and `&mut self.pool`).
        let scheme = Arc::clone(&self.scheme);
        let stats = scheme.registry.stats(self.slot);
        let observer = scheme.telemetry.scan_observer(self.tele.stripe());
        let mut freed = 0usize;
        for chain in &mut self.limbo {
            if chain.bag.is_empty() {
                continue;
            }
            let tag = chain.tag;
            // Precompute, per chain, the highest announced upper bound among
            // reservations that reach it (lower <= tag). A node in this chain
            // is unreachable iff its birth era exceeds that bound: its interval
            // [birth, tag] then overlaps no reservation.
            let mut reached = false;
            let mut max_upper: Era = 0;
            for &(lower, upper) in &self.reservations {
                if lower <= tag {
                    reached = true;
                    max_upper = max_upper.max(upper);
                }
            }
            // SAFETY (free-time condition of Hazard Eras / IBR): every node in
            // the chain was unlinked before being retired, and its conservative
            // lifetime interval is [birth_era, tag]. A thread can only hold a
            // reference if its reservation — announced before the node's
            // unlink, per the fence-then-revalidate protocol — overlaps that
            // interval. The snapshot above was taken after every such retire,
            // so any covering reservation is visible in it; freeing nodes whose
            // interval overlaps no snapshot entry is therefore safe.
            freed += if !reached || chain.min_birth > max_upper {
                // Either no active reservation starts at or below this chain's
                // newest retire era, or even the chain's *oldest* birth clears
                // every reachable upper bound: the whole chain is unreachable.
                self.scan_wholesale += 1;
                stats.add_scan_wholesale();
                // SAFETY: the era scan above proved no reservation can cover any node in this chain; every node is unreachable.
                unsafe {
                    match observer.as_ref() {
                        Some(obs) => chain.bag.reclaim_if(&mut self.pool, |node| {
                            obs.note_free(node);
                            true
                        }),
                        None => chain.bag.reclaim_all(&mut self.pool),
                    }
                }
            } else if chain.max_birth <= max_upper {
                // Even the chain's *youngest* birth is covered by a reachable
                // reservation: nothing can free this pass. Skipping the walk
                // keeps a blocked bag O(1) per scan instead of O(bag) — the
                // Cadence early-stop analogue for era intervals.
                self.scan_skips += 1;
                stats.add_scan_skip();
                0
            } else {
                // Partial reclaim: recompute both birth bounds from the
                // survivors the walk already touches, so a chain whose
                // survivors are all old takes a fast path next scan instead
                // of re-walking until it fully drains (stale bounds also
                // blocked the wholesale dispatch when the true survivor
                // minimum had risen past every reachable upper bound).
                self.scan_walks += 1;
                stats.add_scan_walk();
                let mut new_min = Era::MAX;
                let mut new_max = 0;
                // SAFETY: the bag owns the nodes; one is freed only when its birth era lies above every reachable reservation upper bound.
                let freed_here = unsafe {
                    chain.bag.reclaim_if_visit(
                        &mut self.pool,
                        |node| {
                            let free = node.birth_era() > max_upper;
                            if free {
                                if let Some(obs) = observer.as_ref() {
                                    obs.note_free(node);
                                }
                            }
                            free
                        },
                        |survivor| {
                            let birth = survivor.birth_era();
                            new_min = new_min.min(birth);
                            new_max = new_max.max(birth);
                        },
                    )
                };
                if !chain.bag.is_empty() {
                    chain.min_birth = new_min;
                    chain.max_birth = new_max;
                }
                freed_here
            };
        }
        if let Some(obs) = observer {
            obs.finish();
        }
        if freed > 0 {
            self.stats().add_freed(freed as u64);
            self.stats()
                .add_freed_bytes((bytes_before - self.limbo_bytes()) as u64);
        }
        // Report this handle's in-limbo delta into the pacer's striped
        // aggregate and let it adapt the tick interval (no-op under the
        // static policy). Runs after the frees so the estimate tracks the
        // *residue* — the garbage reservations are actually pinning. In byte
        // mode the figure is bytes against a low-water mark of budget/4; a
        // resulting speed-up is a budget escalation and is counted as such.
        let in_limbo = if self.scheme.pacer_in_bytes {
            self.limbo_bytes()
        } else {
            self.limbo_size()
        };
        let sped_up = self
            .scheme
            .pacer
            .note_scan(self.stripe, in_limbo, &mut self.limbo_reported);
        if sped_up && self.scheme.pacer_in_bytes {
            self.scheme.governor.count_pacer_boost();
        }
        self.scheme.governor.report(
            self.budget_stripe,
            self.limbo_bytes(),
            &mut self.budget_reported,
        );
    }
}

impl SmrHandle for HeHandle {
    fn begin_op(&mut self) {
        // One era announcement per operation: HE's whole hot-path protection
        // cost (plus the fence inside `announce`).
        let era = self.scheme.pacer.current();
        self.active = false; // a fresh op narrows the reservation to a point
        self.announce(era);
    }

    fn end_op(&mut self) {
        self.record().deactivate();
        self.active = false;
    }

    #[inline]
    fn protect(&mut self, _index: usize, _ptr: *mut u8) {
        // Era protection is per interval, not per pointer: the slot index and
        // address are irrelevant. All that matters is that the reservation
        // covers the era at which the caller acquired the reference — so
        // re-announce only when the global era moved since the last
        // publication (amortized: eras advance once per pacer interval of
        // allocations, not per node).
        let era = self.scheme.pacer.current();
        if era != self.announced_upper || !self.active {
            self.announce(era);
        }
    }

    fn clear_protections(&mut self) {
        // Dropping every protection = withdrawing the reservation. Data
        // structures call this when they hold no more shared references
        // (just before `end_op`), which is exactly when it is safe.
        self.record().deactivate();
        self.active = false;
    }

    fn alloc_node(&mut self) -> Era {
        self.allocs_since_tick += 1;
        // The interval is the pacer's current allocations-per-tick: a policy
        // constant (static) or tracking the scheme-wide limbo estimate
        // (adaptive) — one relaxed load of a read-mostly padded line.
        if self.allocs_since_tick >= self.scheme.pacer.current_interval() {
            self.allocs_since_tick = 0;
            self.scheme.pacer.advance();
        }
        // The stamp may lag the era at link time (the node is published later),
        // which is the safe direction: a smaller birth era widens the node's
        // lifetime interval.
        self.scheme.pacer.current()
    }

    unsafe fn retire(&mut self, ptr: *mut u8, drop_fn: DropFn) {
        // Unstamped retire: NO_BIRTH_ERA (= 0) makes the node's interval start
        // before every announced era — maximally conservative, always safe.
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.retire_sized(ptr, drop_fn, reclaim_core::NO_BIRTH_ERA, 0) }
    }

    unsafe fn retire_with_birth(&mut self, ptr: *mut u8, drop_fn: DropFn, birth_era: Era) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.retire_sized(ptr, drop_fn, birth_era, 0) }
    }

    unsafe fn retire_sized(
        &mut self,
        ptr: *mut u8,
        drop_fn: DropFn,
        birth_era: Era,
        size_bytes: usize,
    ) {
        self.stats().add_retired(1);
        self.stats().add_retired_bytes(size_bytes as u64);
        if size_bytes == 0 {
            self.stats().add_size_unknown_retire();
        }
        // The retire era must be a *fresh* read (see the scheme docs): any
        // reader still holding this node announced its reservation before now,
        // so monotonicity puts that announcement inside [birth, retire].
        let retire_era = self.scheme.pacer.current();
        // SAFETY: forwarded from the caller's contract. `retired_at` carries
        // the logical retire era — HE never consults wall-clock age.
        let mut node = unsafe {
            RetiredPtr::with_birth_sized(ptr, drop_fn, retire_era, birth_era, size_bytes)
        };
        node.set_retire_tick(self.tele.retire_tick());
        let chain = &mut self.limbo[(retire_era % ERA_BUCKETS as u64) as usize];
        if chain.bag.is_empty() {
            chain.tag = retire_era;
            chain.min_birth = birth_era;
            chain.max_birth = birth_era;
        } else {
            // A tag collision (eras ERA_BUCKETS apart) widens the chain's
            // conservative interval instead of draining: always safe, and the
            // stale cohabitants free as soon as no reservation reaches the
            // merged tag.
            chain.tag = chain.tag.max(retire_era);
            chain.min_birth = chain.min_birth.min(birth_era);
            chain.max_birth = chain.max_birth.max(birth_era);
        }
        chain.bag.push(&mut self.pool, node);
        self.retires_since_scan += 1;
        if self.retires_since_scan >= self.scheme.config.scan_threshold {
            self.retires_since_scan = 0;
            self.scan();
        } else if self.scheme.governor.observe(
            self.budget_stripe,
            self.limbo_bytes(),
            &mut self.budget_reported,
        ) {
            // Budget breach: force a scan ahead of the count threshold (rung
            // 1 — era scans are reservation-gated and safe mid-operation; the
            // scan's own era advance plus the byte-mode pacer keep ticking,
            // rung 2a). If a stalled reservation still pins us over budget,
            // take one bounded backpressure yield (rung 3).
            self.scheme.governor.count_forced_scan();
            self.retires_since_scan = 0;
            self.scan();
            if self.scheme.governor.report(
                self.budget_stripe,
                self.limbo_bytes(),
                &mut self.budget_reported,
            ) {
                self.scheme.governor.count_backpressure();
                std::thread::yield_now();
            }
        }
    }

    fn flush(&mut self) {
        // Flush runs between operations: withdraw our own reservation so it
        // cannot block the scan below (mirror of EBR's defensive unpin).
        self.record().deactivate();
        self.active = false;
        // Adopt limbo leftovers of exited threads into the current era's
        // bucket, tagged with the current era — conservative for every adopted
        // node, whose true retire era can only be older. The era for the tag
        // is read *after* taking the parked chain: `adopt_into`'s mutex
        // acquire happens-after every parker's release, and coherence on the
        // monotone era counter then guarantees this load is at least every
        // retire era in the adopted chain. (Reading the era first would race:
        // a handle retiring at a newer era and parking between our load and
        // the adopt would leave the tag below its nodes' retire eras, and the
        // scan's `lower <= tag` reach test could miss a reservation that
        // still covers them — a wholesale free under a live reader.)
        let mut adopted = SegBag::new();
        self.scheme.parked.adopt_into(&mut adopted);
        if !adopted.is_empty() {
            // The adopted nodes leave the pacer's (and governor's) parked
            // counters and re-enter this handle's own limbo reports (the scan
            // below files the first one) — the hand-off conserves both
            // scheme-wide estimates. Denominations match what was parked.
            let pacer_debit = if self.scheme.pacer_in_bytes {
                adopted.bytes()
            } else {
                adopted.len()
            };
            self.scheme.pacer.note_parked(-(pacer_debit as i64));
            self.scheme.governor.note_parked(-(adopted.bytes() as i64));
            let era = self.scheme.pacer.current();
            // Adopted nodes carry real per-node birth stamps: compute the true
            // birth bounds while splicing (an O(adopted) walk on a churn-only
            // path) instead of clamping `min_birth` to NO_BIRTH_ERA /
            // `max_birth` to the current era. The clamp cost the chain both
            // O(1) dispatches for as long as any reservation was active: the
            // wholesale test compared the stalled reader against "born before
            // every era" and the skip test against "born just now", so one
            // handle-churn event degraded the whole adopted chain to O(bag)
            // walks. Genuinely unstamped nodes still carry NO_BIRTH_ERA per
            // node, which the minimum picks up naturally.
            let mut adopted_min = Era::MAX;
            let mut adopted_max = reclaim_core::NO_BIRTH_ERA;
            for node in adopted.iter() {
                let birth = node.birth_era();
                adopted_min = adopted_min.min(birth);
                adopted_max = adopted_max.max(birth);
            }
            let chain = &mut self.limbo[(era % ERA_BUCKETS as u64) as usize];
            if chain.bag.is_empty() {
                chain.tag = era;
                chain.min_birth = adopted_min;
                chain.max_birth = adopted_max;
            } else {
                chain.tag = chain.tag.max(era);
                chain.min_birth = chain.min_birth.min(adopted_min);
                chain.max_birth = chain.max_birth.max(adopted_max);
            }
            chain.bag.splice(&mut adopted);
        }
        self.retires_since_scan = 0;
        // The scan also resets `allocs_since_tick` next to its era advance,
        // so a flush (and the drop path through it) never leaves a phantom
        // partial tick behind.
        self.scan();
    }

    fn local_in_limbo(&self) -> usize {
        self.limbo_size()
    }

    fn local_limbo_bytes(&self) -> usize {
        self.limbo_bytes()
    }

    fn telemetry_op_begin(&mut self) -> Option<Instant> {
        self.tele.op_begin()
    }

    fn telemetry_op_end(&mut self, started: Instant) {
        self.tele.op_end(started);
    }
}

impl Drop for HeHandle {
    fn drop(&mut self) {
        self.flush();
        // Whatever is still pinned by other readers is parked on the scheme
        // with O(1) splices and adopted by the next flushing handle (or
        // released at scheme drop).
        let mut leftovers = SegBag::new();
        for chain in &mut self.limbo {
            leftovers.splice(&mut chain.bag);
        }
        let parked = if self.scheme.pacer_in_bytes {
            leftovers.bytes()
        } else {
            leftovers.len()
        };
        let parked_bytes = leftovers.bytes();
        self.scheme.parked.park(&mut leftovers);
        // Move this handle's limbo contribution from its stripe to the
        // pacer's parked counter: retract the per-handle report (whoever
        // adopts the chain re-reports it as its own delta — leaving both
        // would double count across churn) but keep the parked nodes pressing
        // on the estimate, so the interval cannot decay to the idle floor
        // while real garbage sits in the parking lot waiting for a flush.
        // The governor's parked counter takes over the byte accounting the
        // same way, so a leaked handle's limbo never goes invisible.
        self.scheme
            .pacer
            .note_handle_exit(self.stripe, &mut self.limbo_reported);
        self.scheme.pacer.note_parked(parked as i64);
        self.scheme
            .governor
            .note_handle_exit(self.budget_stripe, &mut self.budget_reported);
        self.scheme.governor.note_parked(parked_bytes as i64);
        self.scheme.registry.release(self.slot);
        // Recycle the workspace to the next registrant: after the first wave of
        // handles, registration allocates nothing.
        self.scheme.handle_cache.park(HeParts {
            pool: std::mem::take(&mut self.pool),
            reservations: std::mem::take(&mut self.reservations),
        });
    }
}

#[cfg(test)]
// Sanctioned raw-protocol site: these tests exercise the scheme's own
// `protect`/retire interface below the guard layer.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use reclaim_core::{retire_box, retire_box_with_birth};
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn tracked(drops: &Arc<AtomicUsize>) -> *mut Tracked {
        Box::into_raw(Box::new(Tracked(Arc::clone(drops))))
    }

    fn small_config() -> SmrConfig {
        SmrConfig::default()
            .with_max_threads(4)
            .with_scan_threshold(8)
            .with_era_advance_interval(4)
    }

    #[test]
    fn single_thread_reclaims_everything_on_flush() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = He::new(small_config());
        let mut handle = scheme.register();
        for _ in 0..100 {
            handle.begin_op();
            let birth = handle.alloc_node();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box_with_birth(&mut handle, tracked(&drops), birth) };
            handle.end_op();
        }
        handle.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 100);
        let snap = Smr::stats(&*scheme);
        assert_eq!(snap.retired, 100);
        assert_eq!(snap.freed, 100);
    }

    #[test]
    fn an_active_reservation_blocks_only_nodes_born_inside_it() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = He::new(small_config().with_scan_threshold(1_000_000));
        let mut reader = scheme.register();
        let mut writer = scheme.register();

        // The reader announces at the current era and stalls mid-operation.
        reader.begin_op();
        let stall_era = scheme.current_era();

        // Nodes born before/at the stall era are pinned by the reservation.
        let old = tracked(&drops);
        let old_birth = scheme.current_era();
        assert!(old_birth >= stall_era);
        // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
        unsafe { retire_box_with_birth(&mut writer, old, old_birth) };
        writer.flush();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "a node born inside the reservation must survive"
        );

        // Advance the era well past the stall; nodes born afterwards are not
        // covered by the stalled reader's [e, e] reservation and must free.
        for _ in 0..4 {
            scheme.pacer.advance();
        }
        let young_birth = writer.alloc_node();
        assert!(young_birth > stall_era);
        // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
        unsafe { retire_box_with_birth(&mut writer, tracked(&drops), young_birth) };
        writer.flush();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "a node born after the stalled reservation must be freed"
        );
        assert_eq!(writer.local_in_limbo(), 1, "the old node is still pinned");

        // Releasing the reservation frees the rest.
        reader.end_op();
        writer.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 2);
        assert_eq!(writer.local_in_limbo(), 0);
    }

    #[test]
    fn unstamped_retires_are_maximally_conservative() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = He::new(small_config().with_scan_threshold(1_000_000));
        let mut reader = scheme.register();
        let mut writer = scheme.register();
        reader.begin_op();
        // Plain `retire` (birth = NO_BIRTH_ERA): treated as born before every
        // era, so any active reservation pins it.
        // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
        unsafe { retire_box(&mut writer, tracked(&drops)) };
        writer.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        reader.end_op();
        writer.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn protect_extends_the_reservation_when_the_era_advances() {
        let scheme = He::new(small_config());
        let mut reader = scheme.register();
        reader.begin_op();
        let (lower, upper) = reader.record().load();
        assert_eq!(lower, upper, "begin_op announces a point interval");
        // The era advances mid-operation (another thread allocating).
        scheme.pacer.advance();
        scheme.pacer.advance();
        reader.protect(0, std::ptr::null_mut());
        let (lower2, upper2) = reader.record().load();
        assert_eq!(lower2, lower, "lower is pinned for the whole operation");
        assert_eq!(upper2, scheme.current_era(), "upper follows the era");
        reader.end_op();
        assert!(reader.record().is_inactive());
    }

    #[test]
    fn alloc_node_ticks_the_global_era_every_interval() {
        let scheme = He::new(small_config().with_era_advance_interval(4));
        let mut handle = scheme.register();
        let start = scheme.current_era();
        let mut births = Vec::new();
        for _ in 0..8 {
            births.push(handle.alloc_node());
        }
        assert_eq!(
            scheme.current_era(),
            start + 2,
            "8 allocations at interval 4 advance the era twice"
        );
        assert!(
            births.windows(2).all(|w| w[0] <= w[1]),
            "births are monotone"
        );
    }

    #[test]
    fn concurrent_workers_reclaim_everything_by_scheme_drop() {
        use std::thread;
        let drops = Arc::new(AtomicUsize::new(0));
        let total = Arc::new(AtomicUsize::new(0));
        let scheme = He::new(
            SmrConfig::default()
                .with_max_threads(4)
                .with_scan_threshold(16)
                .with_era_advance_interval(8),
        );
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let scheme = Arc::clone(&scheme);
                let drops = Arc::clone(&drops);
                let total = Arc::clone(&total);
                thread::spawn(move || {
                    let mut handle = scheme.register();
                    for _ in 0..500 {
                        handle.begin_op();
                        let birth = handle.alloc_node();
                        // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
                        unsafe { retire_box_with_birth(&mut handle, tracked(&drops), birth) };
                        total.fetch_add(1, Ordering::SeqCst);
                        handle.end_op();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(scheme);
        assert_eq!(drops.load(Ordering::SeqCst), total.load(Ordering::SeqCst));
    }

    #[test]
    fn dying_handles_park_leftovers_for_the_next_flush() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = He::new(small_config().with_scan_threshold(1_000_000));
        let mut reader = scheme.register();
        reader.begin_op();
        {
            let mut dying = scheme.register();
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut dying, tracked(&drops)) };
            // The reader's reservation pins the (unstamped) node through the
            // dying handle's final flush.
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0, "parked, not freed");
        let mut survivor = scheme.register();
        reader.end_op();
        survivor.flush();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "the survivor adopts and frees the parked node"
        );
    }

    #[test]
    fn handle_cache_recycles_pool_and_scratch_across_registrations() {
        let scheme = He::new(small_config());
        assert_eq!(scheme.cached_handle_parts(), 0);
        {
            let _a = scheme.register();
        }
        assert_eq!(scheme.cached_handle_parts(), 1);
        {
            let _b = scheme.register(); // adopts the parked parts
            assert_eq!(scheme.cached_handle_parts(), 0);
        }
        assert_eq!(scheme.cached_handle_parts(), 1);
    }

    #[test]
    fn partial_reclaim_recomputes_birth_bounds_for_the_fast_path() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = He::new(small_config().with_scan_threshold(1_000_000));
        let mut reader = scheme.register();
        let mut writer = scheme.register();

        // The reader stalls at era `e`; nodes born at `e` are pinned by it.
        reader.begin_op();
        let stall = scheme.current_era();
        let old: Vec<(*mut Tracked, Era)> = (0..3)
            .map(|_| {
                let birth = writer.alloc_node();
                assert_eq!(birth, stall);
                (tracked(&drops), birth)
            })
            .collect();
        // Advance well past the stall; later allocations are *young*.
        for _ in 0..3 {
            scheme.pacer.advance();
        }
        let young: Vec<(*mut Tracked, Era)> = (0..3)
            .map(|_| {
                let birth = writer.alloc_node();
                assert!(birth > stall);
                (tracked(&drops), birth)
            })
            .collect();
        // Retire everything at one era so the whole mix shares one chain.
        for (ptr, birth) in old.iter().chain(young.iter()) {
            // SAFETY: the pointer was produced by `tracked`/Box::into_raw above, is no longer reachable, and is retired exactly once.
            unsafe { retire_box_with_birth(&mut writer, *ptr, *birth) };
        }

        // First scan: a partial walk frees the young nodes (born after the
        // stalled reservation) and must recompute the chain bounds from the
        // old survivors.
        writer.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 3, "young nodes freed");
        assert_eq!(writer.local_in_limbo(), 3, "old nodes pinned");
        let (_, skips_before, walks_before) = writer.scan_dispatch_counts();
        assert_eq!(walks_before, 1, "the mixed chain was walked once");

        // Second scan: the survivors are all old (birth <= the stalled
        // reader's upper bound), so with recomputed bounds the chain takes
        // the O(1) skip fast path instead of another O(bag) walk.
        writer.flush();
        let (_, skips_after, walks_after) = writer.scan_dispatch_counts();
        assert_eq!(
            walks_after, walks_before,
            "a chain of all-old survivors must not be re-walked"
        );
        assert_eq!(skips_after, skips_before + 1, "skip fast path taken");
        assert_eq!(drops.load(Ordering::SeqCst), 3);

        // Releasing the reservation frees the rest wholesale.
        reader.end_op();
        writer.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 6);
        let (wholesale, _, walks_final) = writer.scan_dispatch_counts();
        assert!(wholesale >= 1, "the drained chain went wholesale");
        assert_eq!(walks_final, walks_before);
    }

    #[test]
    fn adopted_chains_keep_real_birth_bounds_under_a_stalled_reader() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = He::new(
            small_config()
                .with_max_threads(8)
                .with_scan_threshold(1_000_000),
        );
        // Reader 1 stalls at era `e` for the whole test.
        let mut stalled = scheme.register();
        stalled.begin_op();
        let stall = scheme.current_era();

        // The era moves on; reader 2 covers the young era while a writer
        // handle churns (retire young nodes, then die with them pinned).
        for _ in 0..4 {
            scheme.pacer.advance();
        }
        let mut cover = scheme.register();
        cover.begin_op();
        {
            let mut dying = scheme.register();
            for _ in 0..3 {
                let birth = dying.alloc_node();
                assert!(birth > stall, "churned nodes are born after the stall");
                // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
                unsafe { retire_box_with_birth(&mut dying, tracked(&drops), birth) };
            }
            // Drop: the final flush cannot free the nodes (reader 2 covers
            // their births), so they are parked with their real stamps.
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0, "parked, not freed");
        cover.end_op();

        // The survivor adopts the parked chain. Only the *stalled* reader is
        // active, and every adopted birth is younger than its upper bound —
        // with true bounds computed while splicing, the whole chain frees
        // wholesale in O(1). (The old clamp to NO_BIRTH_ERA made the chain
        // look born-before-every-era: one churn event under a stalled reader
        // degraded it to an O(bag) walk on every scan.)
        let mut survivor = scheme.register();
        survivor.flush();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            3,
            "young adopted nodes must free despite the stalled reader"
        );
        let (wholesale, _, walks) = survivor.scan_dispatch_counts();
        assert_eq!(wholesale, 1, "adoption frees wholesale, not via a walk");
        assert_eq!(walks, 0);
        stalled.end_op();
    }

    #[test]
    fn flush_resets_the_partial_allocation_tick_exactly() {
        let scheme = He::new(
            small_config()
                .with_era_advance_interval(4)
                .with_scan_threshold(1_000_000),
        );
        let mut handle = scheme.register();
        let start = scheme.current_era();
        for _ in 0..3 {
            handle.alloc_node(); // partial interval: no tick
        }
        assert_eq!(scheme.current_era(), start);
        handle.flush(); // the flush's scan ticks exactly once
        let after_flush = scheme.current_era();
        assert_eq!(after_flush, start + 1);
        // The partial count must not survive the flush: the next tick needs a
        // full interval again (without the reset, the 4th allocation below
        // would fire a phantom tick inherited from before the flush).
        for _ in 0..3 {
            handle.alloc_node();
        }
        assert_eq!(
            scheme.current_era(),
            after_flush,
            "no phantom partial tick may survive a flush"
        );
        handle.alloc_node();
        assert_eq!(scheme.current_era(), after_flush + 1, "full interval ticks");

        // Register/drop/register churn: the era arithmetic stays exact —
        // one scan tick per flush (the drop path flushes), and each handle
        // generation starts a fresh interval.
        let e0 = scheme.current_era();
        drop(handle);
        assert_eq!(scheme.current_era(), e0 + 1, "drop = one flush tick");
        let mut next = scheme.register();
        for _ in 0..3 {
            next.alloc_node();
        }
        assert_eq!(
            scheme.current_era(),
            e0 + 1,
            "a recycled generation starts with a clean tick counter"
        );
        next.alloc_node();
        assert_eq!(scheme.current_era(), e0 + 2);
        drop(next);

        // Threshold-driven scans reset the partial count too: the reset lives
        // in scan() next to the era advance, so every scan trigger (retire
        // threshold, flush, drop) behaves alike.
        let scheme = He::new(
            small_config()
                .with_era_advance_interval(4)
                .with_scan_threshold(2),
        );
        let mut handle = scheme.register();
        let e0 = scheme.current_era();
        for _ in 0..3 {
            handle.alloc_node(); // partial interval
        }
        assert_eq!(scheme.current_era(), e0);
        for _ in 0..2 {
            // Two retires hit the scan threshold: the scan ticks the era once.
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut handle, tracked(&Arc::new(AtomicUsize::new(0)))) };
        }
        assert_eq!(scheme.current_era(), e0 + 1, "one scan tick");
        for _ in 0..3 {
            handle.alloc_node();
        }
        assert_eq!(
            scheme.current_era(),
            e0 + 1,
            "no phantom partial tick after a threshold scan"
        );
        handle.alloc_node();
        assert_eq!(scheme.current_era(), e0 + 2);
    }

    #[test]
    fn parked_leftovers_keep_pressing_on_the_adaptive_estimate() {
        let drops = Arc::new(AtomicUsize::new(0));
        let policy = reclaim_core::EraAdvancePolicy::Adaptive {
            min_interval: 2,
            max_interval: 16,
            limbo_low_water: 8,
        };
        let scheme = He::new(
            small_config()
                .with_scan_threshold(1_000_000)
                .with_era_policy(policy),
        );
        let mut reader = scheme.register();
        reader.begin_op();
        {
            let mut dying = scheme.register();
            for _ in 0..32 {
                // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
                unsafe { retire_box(&mut dying, tracked(&drops)) };
            }
            // Drop: the reader pins the unstamped nodes, so they are parked.
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert_eq!(
            scheme.pacer().limbo_estimate(),
            32,
            "parked limbo must stay visible with no live reporter"
        );
        // Adoption hands the contribution over without a dip or a double count.
        let mut survivor = scheme.register();
        survivor.flush();
        assert_eq!(
            scheme.pacer().limbo_estimate(),
            32,
            "the adopter's report replaces the parked counter exactly"
        );
        reader.end_op();
        survivor.flush();
        assert_eq!(drops.load(Ordering::SeqCst), 32);
        assert_eq!(scheme.pacer().limbo_estimate(), 0);
    }

    #[test]
    fn adaptive_policy_ticks_faster_under_limbo_pressure() {
        let drops = Arc::new(AtomicUsize::new(0));
        let policy = reclaim_core::EraAdvancePolicy::Adaptive {
            min_interval: 2,
            max_interval: 16,
            limbo_low_water: 8,
        };
        let scheme = He::new(
            small_config()
                .with_scan_threshold(16)
                .with_era_policy(policy),
        );
        let mut reader = scheme.register();
        let mut writer = scheme.register();
        // Idle decay: dry scans creep the interval up to the floor.
        for _ in 0..8 {
            writer.flush();
        }
        assert_eq!(scheme.pacer().current_interval(), 16, "idle floor");
        // A stalled reader pins unstamped retires; once the reported limbo
        // passes the low-water mark, the interval halves toward the fast end.
        reader.begin_op();
        for _ in 0..64 {
            // SAFETY: the pointer comes fresh from `tracked` (Box::into_raw) and is retired exactly once.
            unsafe { retire_box(&mut writer, tracked(&drops)) };
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert!(scheme.pacer().limbo_estimate() >= 48, "pressure reported");
        assert!(
            scheme.pacer().current_interval() <= 4,
            "interval shrank under pressure (got {})",
            scheme.pacer().current_interval()
        );
        // Draining the limbo decays the cadence back to the idle floor.
        reader.end_op();
        for _ in 0..8 {
            writer.flush();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 64);
        assert_eq!(scheme.pacer().limbo_estimate(), 0);
        assert_eq!(scheme.pacer().current_interval(), 16);
    }

    #[test]
    fn scheme_reports_name_and_config() {
        let scheme = He::with_defaults();
        assert_eq!(scheme.name(), "he");
        assert!(scheme.config().max_threads >= 1);
        assert!(scheme.current_era() >= 1);
    }
}
