//! Per-thread era reservations: the shared record other threads scan.
//!
//! Where a hazard-pointer record publishes `K` *node addresses*, an era record
//! publishes one *interval of logical time*: the closed era range
//! `[lower, upper]` during which the owning thread may hold references
//! obtained from the shared structure. A retired node whose lifetime interval
//! `[birth, retire]` overlaps no announced reservation is unreachable — the
//! free-time condition of Hazard Eras (Ramalhete & Correia, DISC 2017) in its
//! two-global-eras / IBR formulation (Wen et al., PPoPP 2018).
//!
//! The reservation grows only at the top: `lower` is pinned when the owner
//! begins an operation, and `upper` is bumped whenever the owner observes that
//! the global era advanced mid-operation (see `HeHandle::protect`). That is
//! what lets one record protect arbitrarily many nodes at once — every
//! reference the owner holds was acquired at some era inside `[lower, upper]`,
//! so the overlap check covers all of them with two loads per thread instead
//! of `K` pointer compares.

use reclaim_core::Era;
use std::sync::atomic::{AtomicU64, Ordering};

/// `lower` of an inactive reservation. Greater than every real era, so the
/// overlap test `lower <= retire` fails without a special case.
pub const INACTIVE_LOWER: Era = u64::MAX;

/// `upper` of an inactive reservation. Smaller than every real birth era the
/// stamping path produces (eras start at 1), so `birth <= upper` fails too.
pub const INACTIVE_UPPER: Era = 0;

/// One thread's announced era interval (single writer, many readers).
#[derive(Debug)]
pub struct EraRecord {
    lower: AtomicU64,
    upper: AtomicU64,
}

impl EraRecord {
    /// Creates an inactive (non-blocking) reservation.
    pub fn new() -> Self {
        Self {
            lower: AtomicU64::new(INACTIVE_LOWER),
            upper: AtomicU64::new(INACTIVE_UPPER),
        }
    }

    /// Announces the point interval `[era, era]` (operation start).
    ///
    /// `upper` is written before `lower`: a concurrent scanner that catches the
    /// record mid-activation reads `(INACTIVE_LOWER, era)` — an empty interval.
    /// That is safe, not just benign: activation happens at `begin_op`, when
    /// the owner holds no references yet, and every reference it acquires later
    /// is covered by the publication-fence-then-revalidate argument in
    /// `HeHandle::protect`.
    #[inline]
    pub fn activate(&self, era: Era) {
        self.upper.store(era, Ordering::Release);
        self.lower.store(era, Ordering::Release);
    }

    /// Extends the reservation's top to `era` (the global era advanced while
    /// the owner is mid-operation). `lower` keeps protecting the references
    /// acquired earlier in the operation.
    #[inline]
    pub fn extend_upper(&self, era: Era) {
        self.upper.store(era, Ordering::Release);
    }

    /// Withdraws the reservation (operation end). `lower` is neutralized first,
    /// so a torn read is again an empty interval — and the owner holds no
    /// references at this point either way.
    #[inline]
    pub fn deactivate(&self) {
        self.lower.store(INACTIVE_LOWER, Ordering::Release);
        self.upper.store(INACTIVE_UPPER, Ordering::Release);
    }

    /// Snapshot of `(lower, upper)` for a scan. The two loads are not one
    /// atomic cut; every torn combination is an interval that under-approximates
    /// the live one only in states where the owner holds no references (see
    /// [`activate`](Self::activate) / [`deactivate`](Self::deactivate)).
    #[inline]
    pub fn load(&self) -> (Era, Era) {
        (
            self.lower.load(Ordering::Acquire),
            self.upper.load(Ordering::Acquire),
        )
    }

    /// True when the reservation currently blocks nothing.
    #[inline]
    pub fn is_inactive(&self) -> bool {
        self.lower.load(Ordering::Acquire) == INACTIVE_LOWER
    }
}

impl Default for EraRecord {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_record_is_inactive_and_blocks_nothing() {
        let r = EraRecord::new();
        assert!(r.is_inactive());
        let (lower, upper) = r.load();
        // The overlap test `lower <= retire && birth <= upper` must fail for
        // every real interval.
        assert!(lower > 1_000_000, "inactive lower must exceed any era");
        assert_eq!(upper, INACTIVE_UPPER);
    }

    #[test]
    fn activate_extend_deactivate_round_trip() {
        let r = EraRecord::new();
        r.activate(7);
        assert_eq!(r.load(), (7, 7));
        assert!(!r.is_inactive());
        r.extend_upper(9);
        assert_eq!(r.load(), (7, 9));
        r.deactivate();
        assert!(r.is_inactive());
        // Reactivation starts a fresh point interval.
        r.activate(12);
        assert_eq!(r.load(), (12, 12));
    }
}
