//! # he — Hazard Eras / interval-based reclamation (2GE-style IBR)
//!
//! The eighth scheme of the comparison matrix, filling the design point the
//! QSense paper's evaluation brackets from both sides: **robust like hazard
//! pointers, amortized like the epoch schemes**.
//!
//! * Nodes are stamped with a **birth era** at allocation (through the
//!   [`reclaim_core::SmrHandle::alloc_node`] hook) and a **retire era** at
//!   retirement, bounding each node's lifetime to the interval
//!   `[birth, retire]` of the global logical [`reclaim_core::EraClock`].
//! * Readers announce the **era interval of their current operation** in their
//!   registry slot — one store (plus fence) per operation, extended only when
//!   the global era advances mid-operation.
//! * A retired node is freed once its lifetime interval **overlaps no announced
//!   reservation** — checked per scan with O(N) era reads (against the
//!   HP family's O(N·K) pointer snapshot), with whole era-bucket chains freed
//!   wholesale when no reservation reaches them.
//!
//! The consequence that earns the scheme its place in the matrix: a thread
//! stalled *mid-operation* — the scenario that freezes QSBR and EBR outright —
//! pins only the nodes born at or before its announced interval. Everything
//! allocated after the stall keeps being reclaimed, so the garbage a stalled
//! reader can cause is bounded by the nodes that existed when it stalled
//! (`tests/robustness_bounds.rs` pins this against QSBR's unbounded growth).
//!
//! Lineage: Hazard Eras (Ramalhete & Correia, DISC 2017) and the 2GE
//! interval-based reclamation of Wen et al. (PPoPP 2018); see PAPERS.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod era;
pub mod scheme;

pub use era::EraRecord;
pub use scheme::{He, HeHandle};
