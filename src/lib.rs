//! # qsense-repro — facade crate
//!
//! A reproduction of *"Fast and Robust Memory Reclamation for Concurrent Data
//! Structures"* (Balmau, Guerraoui, Herlihy, Zablotchi — SPAA 2016). This crate
//! re-exports the whole stack so applications can depend on a single crate:
//!
//! * [`smr`] — the reclamation schemes: [`smr::QSense`] (the paper's contribution),
//!   its two ingredients [`smr::Qsbr`] and [`smr::Cadence`], the classic
//!   [`smr::Hazard`] pointers baseline, the [`smr::Leaky`] no-reclamation
//!   baseline, the related-work [`smr::Ebr`] and [`smr::RefCount`] baselines,
//!   and the eighth scheme of the matrix — [`smr::He`], Hazard-Eras /
//!   interval-based reclamation (robust like HP, amortized like the epoch
//!   schemes) — all implementing the common [`smr::Smr`] / [`smr::SmrHandle`]
//!   traits;
//! * [`ds`] — the lock-free data structures of the paper's evaluation, generic over
//!   the scheme: [`ds::HarrisMichaelList`], [`ds::LockFreeSkipList`],
//!   [`ds::LockFreeBst`];
//! * [`bench`] — the workload/measurement harness used by the figure-reproduction
//!   benchmarks and the examples.
//!
//! ## Quick start
//!
//! ```
//! use qsense_repro::ds::HarrisMichaelList;
//! use qsense_repro::smr::{QSense, SmrConfig};
//!
//! // One QSense instance per data structure (or share one across several).
//! let scheme = QSense::new(SmrConfig::for_list().with_rooster_threads(1));
//! let set = HarrisMichaelList::new(scheme);
//!
//! // Each thread registers once and passes its handle to every operation.
//! let mut handle = set.register();
//! assert!(set.insert(7, &mut handle));
//! assert!(set.contains(&7, &mut handle));
//! assert!(set.remove(&7, &mut handle));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Safe-memory-reclamation schemes (the paper's contribution and its baselines).
pub mod smr {
    pub use cadence::{Cadence, CadenceHandle, Rooster};
    pub use ebr::{Ebr, EbrHandle};
    pub use hazard::{Hazard, HazardHandle};
    pub use he::{He, HeHandle};
    pub use qsbr::{Qsbr, QsbrHandle};
    pub use qsense::{Path, QSense, QSenseHandle};
    pub use reclaim_core::stats::StatsSnapshot;
    pub use reclaim_core::{
        retire_box, retire_box_with_birth, Atomic, BudgetGovernor, BudgetVerdict,
        CapacityExhausted, Clock, CountingAllocator, Era, EraAdvancePolicy, EraClock, EraPacer,
        Guard, HandleCache, HandleLease, Leaky, LeakyHandle, LeaseExhausted, LeasePolicy,
        LeasePool, LogHistogram, ManualClock, Owned, ShardedStats, Shared, Smr, SmrConfig,
        SmrHandle, StatStripe, Telemetry, TelemetrySummary, Unlinked, DEFAULT_ERA_ADVANCE_INTERVAL,
        NO_BIRTH_ERA, SHARD_SLOTS,
    };
    pub use refcount::{RefCount, RefCountHandle};
}

/// Lock-free data structures generic over the reclamation scheme.
pub mod ds {
    pub use lockfree_ds::{
        HarrisMichaelList, KeySlot, LockFreeBst, LockFreeHashMap, LockFreeSkipList,
        MichaelScottQueue, TreiberStack, BST_HP_SLOTS, DEFAULT_HASH_BUCKETS, HASHMAP_HP_SLOTS,
        LIST_HP_SLOTS, MAX_HEIGHT, QUEUE_HP_SLOTS, SKIPLIST_HP_SLOTS, STACK_HP_SLOTS,
    };
}

/// Workload generation and measurement harness (the paper's methodology, §7),
/// including the seeded fault-injection matrix ([`bench::run_fault_for`]) that
/// turns the byte-budget robustness claims into verdicts — the CLI exposes it
/// as `qsense-bench --scheme all --fault all --limbo-budget 256k`.
pub mod bench {
    pub use workload::report;
    pub use workload::{
        default_bench_config, default_fault_config, make_set, run_experiment, run_fault,
        run_fault_for, run_server_soak, run_server_soak_with, run_stall_churn, BenchSet,
        DelaySchedule, Experiment, FaultKind, FaultPlan, FaultResult, LimboSampler, OpGenerator,
        OpMix, Operation, RunResult, Sample, SchemeKind, ServerSoakResult, ServerSoakSpec,
        SetSession, StallChurnResult, StallChurnSpec, Structure, WorkloadSpec, PAYLOAD_BYTES,
    };
}
