//! A two-stage work pipeline built on the lock-free Michael–Scott queue.
//!
//! Producers enqueue raw "jobs", a middle stage dequeues them, does some work and
//! enqueues results, and a final stage drains the results. Every hand-off retires
//! the queue's dummy node, so the pipeline exercises reclamation on a structure that
//! is *not* an ordered set — demonstrating the paper's claim (§4.2) that QSense
//! applies wherever hazard pointers apply.
//!
//! Run with: `cargo run --release --example task_pipeline`

use qsense_repro::ds::{MichaelScottQueue, QUEUE_HP_SLOTS};
use qsense_repro::smr::{QSense, Smr, SmrConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// A unit of work flowing through the pipeline.
#[derive(Debug)]
struct Job {
    id: u64,
    payload: u64,
}

/// The result produced by the middle stage.
#[derive(Debug)]
struct Outcome {
    id: u64,
    digest: u64,
}

fn main() {
    let producers = 2;
    let jobs_per_producer = 200_000u64;

    // One QSense instance shared by both queues: the scheme is per-application, not
    // per-structure, exactly like a malloc implementation would be.
    let scheme = QSense::new(
        SmrConfig::default()
            .with_hp_per_thread(QUEUE_HP_SLOTS)
            .with_max_threads(producers + 3)
            .with_rooster_threads(1),
    );
    let inbox: Arc<MichaelScottQueue<Job, QSense>> =
        Arc::new(MichaelScottQueue::new(Arc::clone(&scheme)));
    let outbox: Arc<MichaelScottQueue<Outcome, QSense>> =
        Arc::new(MichaelScottQueue::new(Arc::clone(&scheme)));

    let producing = Arc::new(AtomicBool::new(true));
    let transforming = Arc::new(AtomicBool::new(true));
    let transformed = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));
    let checksum = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    thread::scope(|scope| {
        // Stage 1: producers.
        for p in 0..producers {
            let inbox = Arc::clone(&inbox);
            scope.spawn(move || {
                let mut handle = inbox.register();
                for i in 0..jobs_per_producer {
                    let id = p as u64 * jobs_per_producer + i;
                    inbox.enqueue(
                        Job {
                            id,
                            payload: id.wrapping_mul(0x9E37_79B9),
                        },
                        &mut handle,
                    );
                }
            });
        }

        // Stage 2: transformer (dequeues jobs, enqueues outcomes).
        {
            let inbox = Arc::clone(&inbox);
            let outbox = Arc::clone(&outbox);
            let producing = Arc::clone(&producing);
            let transforming = Arc::clone(&transforming);
            let transformed = Arc::clone(&transformed);
            scope.spawn(move || {
                let mut in_handle = inbox.register();
                let mut out_handle = outbox.register();
                loop {
                    match inbox.dequeue(&mut in_handle) {
                        Some(job) => {
                            let digest = job.payload.rotate_left(13) ^ job.id;
                            outbox.enqueue(Outcome { id: job.id, digest }, &mut out_handle);
                            transformed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if !producing.load(Ordering::Acquire) && inbox.is_empty() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                transforming.store(false, Ordering::Release);
            });
        }

        // Stage 3: consumer (drains outcomes and folds them into a checksum).
        {
            let outbox = Arc::clone(&outbox);
            let transforming = Arc::clone(&transforming);
            let consumed = Arc::clone(&consumed);
            let checksum = Arc::clone(&checksum);
            scope.spawn(move || {
                let mut handle = outbox.register();
                loop {
                    match outbox.dequeue(&mut handle) {
                        Some(outcome) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                            checksum.fetch_xor(
                                outcome.digest ^ outcome.id.rotate_left(32),
                                Ordering::Relaxed,
                            );
                        }
                        None => {
                            if !transforming.load(Ordering::Acquire) && outbox.is_empty() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
            });
        }

        // Wait for the producers (first `producers` spawned threads are joined by
        // scope exit; we only need to flip the flag once they are done, so spawn a
        // small watcher instead of restructuring the scope).
        let inbox_watch = Arc::clone(&inbox);
        let producing_watch = Arc::clone(&producing);
        let total = producers as u64 * jobs_per_producer;
        let transformed_watch = Arc::clone(&transformed);
        scope.spawn(move || {
            // Producers enqueue a fixed number of jobs; once that many have been
            // enqueued (len + transformed == total), production is over.
            loop {
                let seen = transformed_watch.load(Ordering::Relaxed) + inbox_watch.len() as u64;
                if seen >= total {
                    producing_watch.store(false, Ordering::Release);
                    break;
                }
                thread::yield_now();
            }
        });
    });

    let total = producers as u64 * jobs_per_producer;
    let stats = scheme.stats();
    let secs = started.elapsed().as_secs_f64();
    println!("task_pipeline: {producers} producers -> transformer -> consumer");
    println!("  jobs produced            : {total}");
    println!(
        "  jobs transformed         : {}",
        transformed.load(Ordering::Relaxed)
    );
    println!(
        "  outcomes consumed        : {}",
        consumed.load(Ordering::Relaxed)
    );
    println!(
        "  pipeline throughput      : {:.2} M jobs/s",
        total as f64 / secs / 1e6
    );
    println!(
        "  checksum                 : {:#018x}",
        checksum.load(Ordering::Relaxed)
    );
    println!("  queue nodes retired      : {}", stats.retired);
    println!("  queue nodes freed        : {}", stats.freed);
    println!("  nodes still in limbo     : {}", stats.in_limbo());
    assert_eq!(
        consumed.load(Ordering::Relaxed),
        total,
        "no job may be lost"
    );
    // Every dequeue retires exactly one dummy node: 2 * total dequeues happened.
    assert_eq!(stats.retired, 2 * total, "one retired dummy per dequeue");
}
