//! A byte-accounted limbo budget under a stalled thread: QSBR vs QSense.
//!
//! This is the scenario of the paper's Figure 5 (bottom row) — one registered
//! thread stops participating while the others keep removing nodes — run
//! against the budget API: both schemes get the same `limbo_budget` (in
//! *bytes*, accounted end to end from `retire_box`'s `size_of` stamp to the
//! scheme's per-chain byte totals), and at the end each scheme answers for
//! itself through its [`BudgetVerdict`].
//!
//! Under QSBR the stalled thread blocks every grace period: the verdict shows
//! the peak far above the budget and a long `time_over_budget`, with no
//! escalation to count — QSBR has no lever to pull. Under QSense the budget
//! breach itself *is* a lever: the governor trips the hybrid's fallback switch
//! early (before the node-count threshold C would), forces scans, and the peak
//! stays within small constant headroom of the budget.
//!
//! Run with: `cargo run --release --example memory_budget`

use qsense_repro::ds::HarrisMichaelList;
use qsense_repro::smr::{BudgetVerdict, QSense, Qsbr, Smr, SmrConfig, SmrHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// One phase of the experiment: until `STALL_UNTIL` one registered thread is
/// silent, for the rest of the run everyone is active.
const RUN_FOR: Duration = Duration::from_millis(2_400);
const STALL_UNTIL: Duration = Duration::from_millis(1_600);
const SAMPLE_EVERY: Duration = Duration::from_millis(200);

/// The byte budget both schemes are held to (same number, different levers).
const LIMBO_BUDGET: usize = 256 * 1024;

fn run_scenario<S: Smr>(label: &str, scheme: Arc<S>) -> BudgetVerdict {
    let list = Arc::new(HarrisMichaelList::new(Arc::clone(&scheme)));
    {
        let mut handle = list.register();
        for key in 0..2_000u64 {
            list.insert(key, &mut handle);
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let mut samples = Vec::new();

    thread::scope(|scope| {
        // The "stalled" participant: registers (so the scheme counts it), then does
        // nothing until STALL_UNTIL, then participates normally.
        {
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut handle = list.register();
                while started.elapsed() < STALL_UNTIL && !stop.load(Ordering::Relaxed) {
                    thread::sleep(Duration::from_millis(10));
                }
                let mut key = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    key = (key + 1) % 2_000;
                    list.contains(&key, &mut handle);
                }
                handle.flush();
            });
        }

        // Two workers constantly inserting and removing (every remove retires a node).
        for t in 0..2u64 {
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut handle = list.register();
                let mut state = 0xFEED_F00D_u64.wrapping_add(t);
                while !stop.load(Ordering::Relaxed) {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 2_000;
                    if state % 2 == 0 {
                        list.insert(key, &mut handle);
                    } else {
                        list.remove(&key, &mut handle);
                    }
                }
                handle.flush();
            });
        }

        // Sampler: nodes and bytes from the same snapshot.
        while started.elapsed() < RUN_FOR {
            thread::sleep(SAMPLE_EVERY);
            let stats = scheme.stats();
            samples.push((
                started.elapsed().as_secs_f64(),
                stats.in_limbo(),
                stats.limbo_bytes(),
            ));
        }
        stop.store(true, Ordering::Relaxed);
    });

    println!("\n{label}");
    println!("  {:>6}  {:>14}  {:>12}", "t (s)", "in limbo", "limbo KiB");
    for (at, in_limbo, limbo_bytes) in &samples {
        let marker = if *at < STALL_UNTIL.as_secs_f64() {
            "  <- one thread stalled"
        } else {
            ""
        };
        println!(
            "  {at:>6.2}  {in_limbo:>14}  {:>12.1}{marker}",
            *limbo_bytes as f64 / 1024.0
        );
    }

    let verdict = scheme
        .budget_verdict()
        .expect("every scheme in the matrix reports a budget verdict");
    println!(
        "  verdict: peak {:.1} KiB against a {:.0} KiB budget ({:.1}x), {:.0} ms over budget",
        verdict.peak_bytes as f64 / 1024.0,
        verdict.budget_bytes as f64 / 1024.0,
        verdict.peak_bytes as f64 / verdict.budget_bytes as f64,
        verdict.time_over_budget.as_secs_f64() * 1e3,
    );
    println!(
        "  escalations: {} forced scans, {} fallback trips, {} backpressure yields",
        verdict.forced_scans, verdict.fallback_trips, verdict.backpressure_events,
    );
    verdict
}

fn main() {
    println!(
        "memory_budget: a {:.0} KiB limbo budget while one registered thread is stalled",
        LIMBO_BUDGET as f64 / 1024.0
    );
    println!(
        "(the stalled thread wakes up at t = {:.1} s)",
        STALL_UNTIL.as_secs_f64()
    );

    let qsbr_verdict = run_scenario(
        "QSBR (fast but blocking): no lever to pull, the budget is breached for the whole stall",
        Qsbr::new(
            SmrConfig::for_list()
                .with_max_threads(4)
                .with_quiescence_threshold(32)
                .with_limbo_budget(Some(LIMBO_BUDGET)),
        ),
    );

    // QSense: the node-count fallback threshold C is set far out of reach, so the
    // *byte budget* is what trips the hybrid switch — the early-fallback escalation.
    let qsense_verdict = run_scenario(
        "QSense (hybrid): the budget breach trips the Cadence fallback early and caps the peak",
        QSense::new(
            SmrConfig::for_list()
                .with_max_threads(4)
                .with_quiescence_threshold(32)
                .with_scan_threshold(64)
                .with_fallback_threshold(1 << 20)
                .with_rooster_threads(1)
                .with_rooster_interval(Duration::from_millis(5))
                .with_limbo_budget(Some(LIMBO_BUDGET)),
        ),
    );

    println!(
        "\npeak limbo bytes: QSBR = {:.1} KiB, QSense = {:.1} KiB (budget {:.0} KiB)",
        qsbr_verdict.peak_bytes as f64 / 1024.0,
        qsense_verdict.peak_bytes as f64 / 1024.0,
        LIMBO_BUDGET as f64 / 1024.0,
    );
    if qsense_verdict.peak_bytes < qsbr_verdict.peak_bytes && qsense_verdict.escalations() > 0 {
        println!(
            "QSense spent its budget breach on escalation ({} rungs pulled) and stayed bounded; \
             QSBR could only watch its limbo lists grow.",
            qsense_verdict.escalations()
        );
    } else {
        println!(
            "(run was too short for the difference to show on this machine; increase RUN_FOR)"
        );
    }
}
