//! Memory behaviour under a stalled thread: QSBR vs QSense, side by side.
//!
//! This is the scenario of the paper's Figure 5 (bottom row), reduced to its essence
//! and made observable from a terminal: one registered thread stops participating
//! while the others keep removing nodes. Under QSBR the stalled thread blocks every
//! grace period, so the unreclaimed-node count grows without bound — the paper's
//! "the system runs out of memory and eventually fails". Under QSense the growth is
//! detected, the scheme switches to the Cadence fallback path, and the unreclaimed
//! count stays bounded; when the stalled thread comes back, QSense returns to the
//! fast path.
//!
//! Run with: `cargo run --release --example memory_budget`

use qsense_repro::ds::HarrisMichaelList;
use qsense_repro::smr::{QSense, Qsbr, Smr, SmrConfig, SmrHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// One phase of the experiment: `stalled_for` of the run has a silent registered
/// thread, the rest has everyone active.
const RUN_FOR: Duration = Duration::from_millis(2_400);
const STALL_UNTIL: Duration = Duration::from_millis(1_600);
const SAMPLE_EVERY: Duration = Duration::from_millis(200);

fn run_scenario<S: Smr>(label: &str, scheme: Arc<S>) -> Vec<(f64, u64, u64)> {
    let list = Arc::new(HarrisMichaelList::new(Arc::clone(&scheme)));
    {
        let mut handle = list.register();
        for key in 0..2_000u64 {
            list.insert(key, &mut handle);
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let mut samples = Vec::new();

    thread::scope(|scope| {
        // The "stalled" participant: registers (so the scheme counts it), then does
        // nothing until STALL_UNTIL, then participates normally.
        {
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut handle = list.register();
                while started.elapsed() < STALL_UNTIL && !stop.load(Ordering::Relaxed) {
                    thread::sleep(Duration::from_millis(10));
                }
                let mut key = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    key = (key + 1) % 2_000;
                    list.contains(&key, &mut handle);
                }
                handle.flush();
            });
        }

        // Two workers constantly inserting and removing (every remove retires a node).
        for t in 0..2u64 {
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut handle = list.register();
                let mut state = 0xFEED_F00D_u64.wrapping_add(t);
                while !stop.load(Ordering::Relaxed) {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 2_000;
                    if state % 2 == 0 {
                        list.insert(key, &mut handle);
                    } else {
                        list.remove(&key, &mut handle);
                    }
                }
                handle.flush();
            });
        }

        // Sampler.
        while started.elapsed() < RUN_FOR {
            thread::sleep(SAMPLE_EVERY);
            let stats = scheme.stats();
            samples.push((
                started.elapsed().as_secs_f64(),
                stats.in_limbo(),
                stats.freed,
            ));
        }
        stop.store(true, Ordering::Relaxed);
    });

    println!("\n{label}");
    println!("  {:>6}  {:>14}  {:>12}", "t (s)", "in limbo", "freed");
    for (at, in_limbo, freed) in &samples {
        let marker = if *at < STALL_UNTIL.as_secs_f64() {
            "  <- one thread stalled"
        } else {
            ""
        };
        println!("  {at:>6.2}  {in_limbo:>14}  {freed:>12}{marker}");
    }
    samples
}

fn main() {
    println!("memory_budget: unreclaimed nodes while one registered thread is stalled");
    println!(
        "(the stalled thread wakes up at t = {:.1} s)",
        STALL_UNTIL.as_secs_f64()
    );

    let qsbr_samples = run_scenario(
        "QSBR (fast but blocking): limbo grows for as long as the thread is stalled",
        Qsbr::new(
            SmrConfig::for_list()
                .with_max_threads(4)
                .with_quiescence_threshold(32),
        ),
    );

    let qsense_samples = run_scenario(
        "QSense (hybrid): limbo is capped by the switch to the Cadence fallback path",
        QSense::new(
            SmrConfig::for_list()
                .with_max_threads(4)
                .with_quiescence_threshold(32)
                .with_scan_threshold(64)
                .with_fallback_threshold(4_096)
                .with_rooster_threads(1)
                .with_rooster_interval(Duration::from_millis(5)),
        ),
    );

    // Compare the peak unreclaimed-node counts during the stall window.
    let stall_secs = STALL_UNTIL.as_secs_f64();
    let peak = |samples: &[(f64, u64, u64)]| {
        samples
            .iter()
            .filter(|(at, _, _)| *at <= stall_secs)
            .map(|(_, limbo, _)| *limbo)
            .max()
            .unwrap_or(0)
    };
    let qsbr_peak = peak(&qsbr_samples);
    let qsense_peak = peak(&qsense_samples);
    println!(
        "\npeak unreclaimed nodes during the stall: QSBR = {qsbr_peak}, QSense = {qsense_peak}"
    );
    if qsense_peak < qsbr_peak {
        println!("QSense kept memory bounded while QSBR could only watch its limbo lists grow.");
    } else {
        println!(
            "(run was too short for the difference to show on this machine; increase RUN_FOR)"
        );
    }
}
