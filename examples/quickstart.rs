//! Quickstart: safe reclamation in two acts.
//!
//! **Act 1** integrates a brand-new lock-free structure — a miniature Treiber
//! stack — against the safe guard API (`Guard` / `Atomic` / `Owned` /
//! `Unlinked`). The paper's integration rules (bracket the operation, protect
//! then re-validate, stamp the birth era, retire only what you unlinked) are
//! carried by the types, so the whole structure needs exactly two `unsafe`
//! blocks, each stating one honest obligation.
//!
//! **Act 2** hammers a ready-made structure (the Harris–Michael list, itself
//! built on the same guard layer) from several threads under QSense and prints
//! the reclamation counters: every removed node was either freed or is sitting
//! in a bounded limbo list, and no thread ever touched freed memory.
//!
//! Run with: `cargo run --release --example quickstart`

use qsense_repro::ds::HarrisMichaelList;
use qsense_repro::smr::{Atomic, Guard, Owned, QSense, Smr, SmrConfig};
use std::sync::Arc;
use std::thread;

/// A node of the miniature stack. No birth-era field, no mark bit, no raw
/// pointers: the guard layer owns all of that.
struct MiniNode {
    value: u64,
    next: Atomic<MiniNode>,
}

/// A miniature Treiber stack on the guard API, generic over the scheme like
/// every structure in `lockfree-ds`.
struct MiniStack<S: Smr> {
    top: Atomic<MiniNode>,
    smr: Arc<S>,
}

/// The one protection slot the stack needs (its `K` in the paper's terms).
const HP_TOP: usize = 0;

impl<S: Smr> MiniStack<S> {
    fn new(smr: Arc<S>) -> Self {
        Self {
            top: Atomic::null(),
            smr,
        }
    }

    fn register(&self) -> S::Handle {
        self.smr.register()
    }

    fn push(&self, value: u64, handle: &mut S::Handle) {
        // Rule 1: the guard brackets the operation (begin_op here, slot clear
        // + end_op when it drops — on every return path).
        let guard = Guard::new(handle);
        // Rule 3: `Owned::new` stamps the scheme's birth era into a private
        // header; this structure never sees an era.
        let mut node = Owned::new(
            MiniNode {
                value,
                next: Atomic::null(),
            },
            &guard,
        );
        loop {
            let top = self.top.load(&guard);
            node.next.store_private(top); // private: not yet linked
            match self.top.cas_link(top, node) {
                Ok(_) => return,
                // The CAS hands the node back on failure; retry with it.
                Err((_, again)) => node = again,
            }
        }
    }

    fn pop(&self, handle: &mut S::Handle) -> Option<u64> {
        let guard = Guard::new(handle);
        loop {
            // Rule 2: publish + re-read + compare, bundled. The returned
            // `Shared` cannot outlive `guard` (borrow checker enforced).
            let top = guard.load_protected(HP_TOP, &self.top);
            if top.is_null() {
                return None;
            }
            // SAFETY: validated protection on the rooted top link.
            let node = unsafe { top.as_ref() }.expect("non-null top");
            let next = node.next.load(&guard);
            // Rule 4: a successful unlink CAS mints the *only* retire
            // capability for the node.
            // SAFETY: the top link is the sole path by which new observers
            // reach this node.
            match unsafe { self.top.cas_unlink(top, next.unmarked()) } {
                Ok((unlinked, _)) => {
                    let value = unlinked.as_ref().value; // safe: not yet retired
                    unlinked.retire(&guard); // consumed: exactly once, sized, era-stamped
                    return Some(value);
                }
                Err(_) => continue,
            }
        }
    }
}

impl<S: Smr> Drop for MiniStack<S> {
    fn drop(&mut self) {
        // Teardown with exclusive access: walk the chain, reclaiming each
        // node synchronously.
        let mut link = std::mem::replace(&mut self.top, Atomic::null());
        // SAFETY: `&mut self` — no concurrent operations, no protections.
        while let Some(node) = unsafe { link.take() } {
            link = node.into_inner().next;
        }
    }
}

fn main() {
    let threads = 4;
    let ops_per_thread = 100_000u64;
    let key_range = 1_000u64;

    // ---- Act 1: a freshly integrated structure ----------------------------
    let scheme = QSense::new(
        SmrConfig::default()
            .with_max_threads(threads + 1)
            .with_hp_per_thread(1) // the mini stack needs one slot
            .with_rooster_threads(1),
    );
    let stack = Arc::new(MiniStack::new(Arc::clone(&scheme)));
    thread::scope(|scope| {
        for t in 0..threads {
            let stack = Arc::clone(&stack);
            scope.spawn(move || {
                let mut handle = stack.register();
                for i in 0..10_000u64 {
                    stack.push(t as u64 * 10_000 + i, &mut handle);
                    if i % 2 == 0 {
                        stack.pop(&mut handle);
                    }
                }
            });
        }
    });
    let mini_stats = scheme.stats();
    println!("mini-stack (guard API, ~60 lines, 2 unsafe blocks):");
    println!("  nodes retired            : {}", mini_stats.retired);
    println!(
        "  size-unknown retires     : {} (the guard layer seals the 0-byte path)",
        mini_stats.size_unknown_retires
    );
    assert_eq!(mini_stats.size_unknown_retires, 0);
    drop(stack);

    // ---- Act 2: a ready-made structure under load -------------------------
    // `for_list()` sizes the hazard-pointer budget for the list (K = 2); one
    // rooster thread is plenty on a small machine.
    let scheme = QSense::new(
        SmrConfig::for_list()
            .with_max_threads(threads + 1)
            .with_rooster_threads(1),
    );
    let set = Arc::new(HarrisMichaelList::new(Arc::clone(&scheme)));

    thread::scope(|scope| {
        for t in 0..threads {
            let set = Arc::clone(&set);
            scope.spawn(move || {
                let mut handle = set.register();
                let mut state = 0x1234_5678_u64.wrapping_add(t as u64);
                for _ in 0..ops_per_thread {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % key_range;
                    match state % 10 {
                        0..=4 => {
                            set.contains(&key, &mut handle);
                        }
                        5..=7 => {
                            set.insert(key, &mut handle);
                        }
                        _ => {
                            set.remove(&key, &mut handle);
                        }
                    }
                }
            });
        }
    });

    let mut handle = set.register();
    let live = set.len(&mut handle);
    let stats = scheme.stats();
    println!(
        "quickstart: {} threads x {} ops finished",
        threads, ops_per_thread
    );
    println!("  live keys in the set now : {live}");
    println!("  nodes retired            : {}", stats.retired);
    println!("  nodes freed              : {}", stats.freed);
    println!("  nodes still in limbo     : {}", stats.in_limbo());
    println!("  quiescent states         : {}", stats.quiescent_states);
    println!("  fallback switches        : {}", stats.fallback_switches);
    assert!(stats.freed <= stats.retired);
    assert_eq!(stats.size_unknown_retires, 0);
    println!("ok: reclamation accounting is consistent");
}
