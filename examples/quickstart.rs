//! Quickstart: a concurrent set with QSense reclamation.
//!
//! Spawns a handful of threads that hammer a Harris–Michael list through the QSense
//! scheme, then prints the reclamation counters: every removed node was either freed
//! or is sitting in a (bounded) limbo list, and no thread ever touched freed memory.
//!
//! Run with: `cargo run --release --example quickstart`

use qsense_repro::ds::HarrisMichaelList;
use qsense_repro::smr::{QSense, Smr, SmrConfig};
use std::sync::Arc;
use std::thread;

fn main() {
    let threads = 4;
    let ops_per_thread = 100_000u64;
    let key_range = 1_000u64;

    // `for_list()` sizes the hazard-pointer budget for the list (K = 2); one rooster
    // thread is plenty on a small machine.
    let scheme = QSense::new(
        SmrConfig::for_list()
            .with_max_threads(threads + 1)
            .with_rooster_threads(1),
    );
    let set = Arc::new(HarrisMichaelList::new(Arc::clone(&scheme)));

    thread::scope(|scope| {
        for t in 0..threads {
            let set = Arc::clone(&set);
            scope.spawn(move || {
                let mut handle = set.register();
                let mut state = 0x1234_5678_u64.wrapping_add(t as u64);
                for _ in 0..ops_per_thread {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % key_range;
                    match state % 10 {
                        0..=4 => {
                            set.contains(&key, &mut handle);
                        }
                        5..=7 => {
                            set.insert(key, &mut handle);
                        }
                        _ => {
                            set.remove(&key, &mut handle);
                        }
                    }
                }
            });
        }
    });

    let mut handle = set.register();
    let live = set.len(&mut handle);
    let stats = scheme.stats();
    println!(
        "quickstart: {} threads x {} ops finished",
        threads, ops_per_thread
    );
    println!("  live keys in the set now : {live}");
    println!("  nodes retired            : {}", stats.retired);
    println!("  nodes freed              : {}", stats.freed);
    println!("  nodes still in limbo     : {}", stats.in_limbo());
    println!("  quiescent states         : {}", stats.quiescent_states);
    println!("  fallback switches        : {}", stats.fallback_switches);
    assert!(stats.freed <= stats.retired);
    println!("ok: reclamation accounting is consistent");
}
