//! A small "cache server" scenario: the kind of workload the paper's introduction
//! motivates (long-running service, explicit memory management, no GC pauses).
//!
//! A lock-free BST holds the cache index; reader threads look keys up, writer
//! threads insert fresh entries and evict old ones. Eviction is exactly the place
//! where unsafe reclamation would corrupt readers — QSense makes it safe without the
//! per-lookup fences hazard pointers would charge.
//!
//! Run with: `cargo run --release --example kv_cache`

use qsense_repro::ds::LockFreeBst;
use qsense_repro::smr::{QSense, Smr, SmrConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn main() {
    let readers = 3;
    let writers = 1;
    let capacity = 50_000u64;
    let run_for = Duration::from_secs(2);

    let scheme = QSense::new(
        SmrConfig::for_bst()
            .with_max_threads(readers + writers + 1)
            .with_rooster_threads(1),
    );
    let index = Arc::new(LockFreeBst::new(Arc::clone(&scheme)));

    // Warm the cache with the first half of the id space.
    {
        let mut handle = index.register();
        for id in 0..capacity / 2 {
            index.insert(id, &mut handle);
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let hits = Arc::new(AtomicU64::new(0));
    let misses = Arc::new(AtomicU64::new(0));
    let evictions = Arc::new(AtomicU64::new(0));

    thread::scope(|scope| {
        for r in 0..readers {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            let hits = Arc::clone(&hits);
            let misses = Arc::clone(&misses);
            scope.spawn(move || {
                let mut handle = index.register();
                let mut state = 0xabcdef_u64 + r as u64;
                while !stop.load(Ordering::Relaxed) {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % capacity;
                    if index.contains(&key, &mut handle) {
                        hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        for w in 0..writers {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            let evictions = Arc::clone(&evictions);
            scope.spawn(move || {
                let mut handle = index.register();
                let mut state = 0x13579b_u64 + w as u64;
                while !stop.load(Ordering::Relaxed) {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let fresh = (state >> 33) % capacity;
                    index.insert(fresh, &mut handle);
                    // Evict a pseudo-random old entry to keep the cache near capacity.
                    let victim = (state >> 17) % capacity;
                    if index.remove(&victim, &mut handle) {
                        evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        thread::sleep(run_for);
        stop.store(true, Ordering::Relaxed);
    });

    let stats = scheme.stats();
    let mut handle = index.register();
    println!("kv_cache: {readers} readers + {writers} writer for {run_for:?}");
    println!(
        "  lookups: {} hits / {} misses",
        hits.load(Ordering::Relaxed),
        misses.load(Ordering::Relaxed)
    );
    println!(
        "  evictions                : {}",
        evictions.load(Ordering::Relaxed)
    );
    println!("  entries in index now     : {}", index.len(&mut handle));
    println!(
        "  nodes retired / freed    : {} / {}",
        stats.retired, stats.freed
    );
    println!("  nodes still in limbo     : {}", stats.in_limbo());
    println!(
        "  reclamation path switches: {} to fallback, {} back to fast",
        stats.fallback_switches, stats.fast_path_switches
    );
}
