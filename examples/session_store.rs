//! A concurrent session store on the lock-free hash map.
//!
//! This is the hash-table workload Michael's SPAA 2002 paper (the source of the
//! linked list the QSense paper evaluates) was designed for: a service keeps one
//! record per active session; request threads look sessions up on every request,
//! while a maintenance thread logs users in and out. Every logout retires a node, so
//! without safe reclamation the lookup threads would race against `free`.
//!
//! The store uses QSense: lookups pay no per-node fence (unlike classic hazard
//! pointers), and a stalled request thread cannot make the store's memory grow
//! without bound (unlike QSBR).
//!
//! Run with: `cargo run --release --example session_store`

use qsense_repro::ds::LockFreeHashMap;
use qsense_repro::smr::{QSense, Smr, SmrConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// What the store keeps per session.
#[derive(Clone, Debug)]
struct Session {
    user_id: u64,
    login_at_ms: u64,
}

fn main() {
    let request_threads = 3;
    let user_space = 20_000u64;
    let run_for = Duration::from_secs(2);

    let scheme = QSense::new(
        SmrConfig::default()
            .with_hp_per_thread(qsense_repro::ds::HASHMAP_HP_SLOTS)
            .with_max_threads(request_threads + 2)
            .with_rooster_threads(1),
    );
    let store: Arc<LockFreeHashMap<u64, Session, QSense>> =
        Arc::new(LockFreeHashMap::new(Arc::clone(&scheme)));

    // Seed the store with half the user space already logged in.
    {
        let mut handle = store.register();
        for user_id in 0..user_space / 2 {
            store.insert(
                user_id,
                Session {
                    user_id,
                    login_at_ms: 0,
                },
                &mut handle,
            );
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let lookups = Arc::new(AtomicU64::new(0));
    let hits = Arc::new(AtomicU64::new(0));
    let logins = Arc::new(AtomicU64::new(0));
    let logouts = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    thread::scope(|scope| {
        // Request threads: look up sessions and read their fields.
        for t in 0..request_threads {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let lookups = Arc::clone(&lookups);
            let hits = Arc::clone(&hits);
            scope.spawn(move || {
                let mut handle = store.register();
                let mut state = 0xABCD_EF01_u64.wrapping_add(t as u64);
                while !stop.load(Ordering::Relaxed) {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let user_id = (state >> 33) % user_space;
                    lookups.fetch_add(1, Ordering::Relaxed);
                    if let Some(session) = store.get(&user_id, &mut handle) {
                        // Use the cloned record; the node itself may already have
                        // been retired by a concurrent logout — that is the point.
                        assert_eq!(session.user_id, user_id);
                        assert!(session.login_at_ms as u128 <= started.elapsed().as_millis());
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // Maintenance thread: logs users in and out, which is where retirement (and
        // hence reclamation) happens.
        {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let logins = Arc::clone(&logins);
            let logouts = Arc::clone(&logouts);
            scope.spawn(move || {
                let mut handle = store.register();
                let mut state = 0x5555_AAAA_u64;
                while !stop.load(Ordering::Relaxed) {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let user_id = (state >> 33) % user_space;
                    if state.is_multiple_of(2) {
                        let session = Session {
                            user_id,
                            login_at_ms: started.elapsed().as_millis() as u64,
                        };
                        if store.insert(user_id, session, &mut handle) {
                            logins.fetch_add(1, Ordering::Relaxed);
                        }
                    } else if store.remove(&user_id, &mut handle) {
                        logouts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        thread::sleep(run_for);
        stop.store(true, Ordering::Relaxed);
    });

    let stats = scheme.stats();
    let secs = started.elapsed().as_secs_f64();
    println!(
        "session_store: {request_threads} request threads + 1 maintenance thread, {:.1}s",
        secs
    );
    println!(
        "  lookups                  : {} ({:.2} M/s, {:.1}% hit rate)",
        lookups.load(Ordering::Relaxed),
        lookups.load(Ordering::Relaxed) as f64 / secs / 1e6,
        100.0 * hits.load(Ordering::Relaxed) as f64 / lookups.load(Ordering::Relaxed).max(1) as f64,
    );
    println!(
        "  logins / logouts         : {} / {}",
        logins.load(Ordering::Relaxed),
        logouts.load(Ordering::Relaxed)
    );
    println!("  sessions currently live  : {}", store.len());
    println!("  nodes retired            : {}", stats.retired);
    println!("  nodes freed              : {}", stats.freed);
    println!("  nodes still in limbo     : {}", stats.in_limbo());
    println!(
        "  traversal fences issued  : {} (QSense never issues any)",
        stats.traversal_fences
    );
    assert!(stats.freed <= stats.retired);
}
