//! Scheme comparison: a miniature version of the paper's Figure 3 / Figure 5 tables.
//!
//! Runs the same mixed workload on the linked list under the paper's legend
//! (None, QSBR, QSense, Cadence, HP) and prints throughput plus the overhead
//! relative to the leaky baseline — the numbers §7.3 of the paper summarises as
//! "QSBR ≈ 2.3%, QSense ≈ 29%, HP ≈ 80% average overhead" — then adds the
//! reproduction's eighth scheme, Hazard Eras (`he`): robust like HP (a stalled
//! reader bounds garbage by eras instead of freezing reclamation), amortized
//! like the epoch schemes (one era announcement per operation instead of one
//! fenced store per node).
//!
//! Run with: `cargo run --release --example scheme_comparison`

use qsense_repro::bench::{
    default_bench_config, make_set, report, run_experiment, Experiment, SchemeKind, Structure,
    WorkloadSpec,
};
use std::time::Duration;

fn main() {
    let threads = 4;
    let spec = WorkloadSpec::fig3_list();
    println!(
        "scheme_comparison: linked list, {} keys, 10% updates, {threads} threads, 1 s per scheme",
        spec.key_range
    );

    let mut baseline_mops = None;
    // The paper's legend first, then the eighth scheme added by this
    // reproduction (Hazard Eras — see the module docs).
    let schemes = SchemeKind::all().into_iter().chain([SchemeKind::He]);
    for scheme in schemes {
        let set = make_set(Structure::List, scheme, default_bench_config(threads + 2));
        let experiment = Experiment {
            set,
            spec,
            threads,
            duration: Duration::from_secs(1),
            delay: None,
            sample_interval: None,
            limbo_cap: None,
        };
        let result = run_experiment(&experiment);
        if scheme == SchemeKind::None {
            baseline_mops = Some(result.mops());
        }
        println!("{}", report::throughput_row(&result, baseline_mops));
    }
    println!(
        "\nPaper reference points: QSBR ~2.3% overhead, QSense ~29%, HP ~80%; QSense 2-3x HP."
    );
}
