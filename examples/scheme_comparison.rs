//! Scheme comparison: a miniature version of the paper's Figure 3 / Figure 5 tables.
//!
//! Runs the same mixed workload on the linked list under the paper's legend
//! (None, QSBR, QSense, Cadence, HP) and prints throughput plus the overhead
//! relative to the leaky baseline — the numbers §7.3 of the paper summarises as
//! "QSBR ≈ 2.3%, QSense ≈ 29%, HP ≈ 80% average overhead" — then adds the
//! reproduction's eighth scheme, Hazard Eras (`he`): robust like HP (a stalled
//! reader bounds garbage by eras instead of freezing reclamation), amortized
//! like the epoch schemes (one era announcement per operation instead of one
//! fenced store per node).
//!
//! Every structure here runs on the safe guard layer (`reclaim_core::guard`),
//! so the same comparison extends beyond the paper's set matrix for free: the
//! second table runs the 100%-churn FIFO/LIFO workloads (Michael–Scott queue,
//! Treiber stack) that exist *because* integrating a structure now costs a
//! handful of typed calls instead of a hand-derived pointer protocol.
//!
//! Run with: `cargo run --release --example scheme_comparison`

use qsense_repro::bench::{
    default_bench_config, make_set, report, run_experiment, Experiment, OpMix, SchemeKind,
    Structure, WorkloadSpec,
};
use std::time::Duration;

/// Runs one structure × every scheme in the legend, printing a throughput row
/// per scheme with overhead relative to the leaky baseline.
fn compare(structure: Structure, spec: WorkloadSpec, threads: usize) {
    let mut baseline_mops = None;
    // The paper's legend first, then the eighth scheme added by this
    // reproduction (Hazard Eras — see the module docs).
    let schemes = SchemeKind::all().into_iter().chain([SchemeKind::He]);
    for scheme in schemes {
        let set = make_set(structure, scheme, default_bench_config(threads + 2));
        let experiment = Experiment {
            set,
            spec,
            threads,
            duration: Duration::from_secs(1),
            delay: None,
            sample_interval: None,
            limbo_cap: None,
        };
        let result = run_experiment(&experiment);
        if scheme == SchemeKind::None {
            baseline_mops = Some(result.mops());
        }
        println!("{}", report::throughput_row(&result, baseline_mops));
    }
}

fn main() {
    let threads = 4;

    let spec = WorkloadSpec::fig3_list();
    println!(
        "scheme_comparison: linked list, {} keys, 10% updates, {threads} threads, 1 s per scheme",
        spec.key_range
    );
    compare(Structure::List, spec, threads);
    println!(
        "\nPaper reference points: QSBR ~2.3% overhead, QSense ~29%, HP ~80%; QSense 2-3x HP."
    );

    // Beyond the paper's matrix: the guard-layer extension structures under
    // their natural workload — 100% churn, every operation retiring or
    // allocating, the hardest mix for a reclamation scheme.
    for structure in [Structure::Queue, Structure::Stack] {
        let spec = WorkloadSpec::new(structure.default_key_range(), OpMix::churn());
        println!(
            "\nscheme_comparison: {}, 100% churn, {threads} threads, 1 s per scheme",
            structure.name()
        );
        compare(structure, spec, threads);
    }
    println!(
        "\nNote: under 100% churn the leaky baseline *loses* — millions of dead \
         nodes (its in-limbo column) thrash the cache, the paper's memory \
         argument in miniature."
    );
}
