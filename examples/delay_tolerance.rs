//! Delay tolerance: the experiment that motivates the paper, at example scale.
//!
//! Two identical workloads run on a skip list — one reclaiming with plain QSBR, one
//! with QSense — while one worker thread periodically stalls (as if stuck in I/O or
//! descheduled). The example prints the unreclaimed-node count over time: QSBR's
//! limbo grows without bound during every stall, QSense's stays bounded because it
//! switches to its Cadence fallback path and back.
//!
//! Run with: `cargo run --release --example delay_tolerance`

use qsense_repro::bench::{
    make_set, run_experiment, DelaySchedule, Experiment, OpMix, SchemeKind, Structure, WorkloadSpec,
};
use std::time::Duration;

fn main() {
    let threads = 4;
    let spec = WorkloadSpec::new(2_000, OpMix::updates_50());
    let run = Duration::from_secs(6);
    // One thread stalls for 1.5 s out of every 3 s.
    let delay = DelaySchedule {
        victim: 0,
        period: Duration::from_secs(3),
        delay: Duration::from_millis(1500),
    };

    println!("delay_tolerance: skip list, {threads} threads, one thread stalled half the time\n");
    for scheme in [SchemeKind::Qsbr, SchemeKind::QSense] {
        let set = make_set(
            Structure::SkipList,
            scheme,
            qsense_repro::bench::default_bench_config(threads + 2),
        );
        let experiment = Experiment {
            set,
            spec,
            threads,
            duration: run,
            delay: Some(delay),
            sample_interval: Some(Duration::from_millis(500)),
            limbo_cap: None,
        };
        let result = run_experiment(&experiment);
        println!("scheme = {}", result.scheme);
        println!("  time(s)  throughput(Mops/s)  unreclaimed-nodes");
        for sample in &result.samples {
            println!(
                "  {:>6.1}  {:>18.3}  {:>17}",
                sample.at.as_secs_f64(),
                sample.ops_per_sec / 1.0e6,
                sample.in_limbo
            );
        }
        println!(
            "  total: {:.3} Mops/s, fallback switches = {}, fast-path switches = {}, final limbo = {}\n",
            result.mops(),
            result.stats.fallback_switches,
            result.stats.fast_path_switches,
            result.stats.in_limbo()
        );
    }
    println!("Expected shape: QSBR's unreclaimed-node column climbs during every stall and never");
    println!("recovers, while QSense's stays bounded (it switches to Cadence and back).");
}
