//! The steady-state retirement pipeline must not allocate.
//!
//! The hot-path contract (see `reclaim-core`'s module docs): once a thread's
//! segment pool and scan scratch buffer have reached their steady-state
//! capacity, the whole retire→scan→reclaim pipeline — pushing into the
//! segment-chain bag, the hazard-pointer snapshot, the within-segment
//! compaction of `SegBag::reclaim_if`, and the parked-chain hand-off at handle
//! drop — performs **zero heap allocations**. This test pins that property
//! with the process-wide counting allocator:
//!
//! * scans over a bag holding protected (hence unreclaimable) residue must not
//!   move the allocator's `allocated_bytes` counter at all;
//! * retire/reclaim cycles that regrow a drained bag — past the level it held
//!   when measurement started — must allocate exactly the retired nodes
//!   themselves (`Box<u64>`, 8 bytes each) and nothing for the bookkeeping,
//!   because drained segments are recycled through the per-handle pool;
//! * dropping a handle with leftovers (park) and the next surviving handle's
//!   flush (adopt) are O(1) chain splices that allocate nothing;
//! * register/drop/register churn (the thread-pool pattern) allocates only the
//!   retired nodes once the first wave of handles has parked its pool and
//!   scratch buffers on the scheme's `HandleCache` for successors to adopt.
//!
//! Everything runs in a single `#[test]` so no concurrent test case can disturb
//! the global allocation counters. The assertions are *exact*; because the
//! libtest harness itself very occasionally allocates ~100 bytes from another
//! thread mid-window, each measured region is retried a few times — a genuine
//! bookkeeping allocation is deterministic and fails every attempt.
//!
//! The whole file is compiled out under `check-oracle`: the shadow-heap oracle
//! deliberately allocates (shard maps, context strings) on the very paths this
//! test pins as allocation-free.
#![cfg(not(feature = "check-oracle"))]

use qsense_repro::smr::{
    Cadence, Clock, CountingAllocator, Ebr, EraAdvancePolicy, Hazard, He, Leaky, ManualClock,
    QSense, Qsbr, RefCount, Smr, SmrConfig, SmrHandle,
};
use std::sync::Arc;
use std::time::Duration;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Number of nodes kept protected (and therefore unreclaimed) across the
/// measured scans, so every scan exercises the keep path of `reclaim_if`.
const PROTECTED: usize = 8;
/// Nodes retired in total; the unprotected majority is freed during warm-up.
const RETIRED: usize = 64;
/// Scans performed while asserting allocation-freedom.
const MEASURED_SCANS: usize = 100;

fn config(clock: &ManualClock) -> SmrConfig {
    SmrConfig::default()
        .with_max_threads(2)
        .with_hp_per_thread(PROTECTED)
        // No background rooster threads: nothing else may touch the allocator
        // while the steady-state window is measured.
        .with_rooster_threads(0)
        .with_rooster_interval(Duration::from_millis(1))
        // High thresholds: scans happen only when the test calls flush().
        .with_quiescence_threshold(1_000_000)
        .with_scan_threshold(1_000_000)
        .with_clock(Clock::manual(clock.clone()))
}

/// Runs `measure` (a repeatable measured region returning the allocator-bytes
/// delta it observed) up to three times, asserting the delta is *exactly*
/// `expected` at least once. A real bookkeeping allocation repeats every
/// attempt; the retries only absorb the test harness's own rare ~100-byte
/// background allocations landing inside a window.
fn assert_alloc_delta(label: &str, expected: u64, mut measure: impl FnMut() -> u64) {
    let mut last = 0;
    for _ in 0..3 {
        last = measure();
        if last == expected {
            return;
        }
    }
    panic!("{label}: allocator delta {last} bytes, expected exactly {expected} (3 attempts)");
}

/// Retires `RETIRED` boxed nodes through `writer`, with the first `PROTECTED` of
/// them protected by `reader` (protection is published before the retire, as the
/// integration discipline requires, so they must survive every scan).
// Sanctioned raw-protocol site: this test pins the raw retire pipeline's
// allocation behavior below the guard layer.
#[allow(clippy::disallowed_methods)]
fn park_protected_residue<H: SmrHandle>(reader: &mut H, writer: &mut H) {
    for i in 0..RETIRED {
        let ptr = Box::into_raw(Box::new(0u64));
        if i < PROTECTED {
            reader.protect(i, ptr.cast());
        }
        // SAFETY: freshly boxed, unlinked by construction, retired once.
        unsafe { qsense_repro::smr::retire_box(writer, ptr) };
    }
}

/// Runs `MEASURED_SCANS` flushes and asserts the allocator counter stands still.
fn assert_scans_do_not_allocate<H: SmrHandle>(scheme_name: &str, writer: &mut H) {
    assert_alloc_delta(
        &format!("{scheme_name}: {MEASURED_SCANS} steady-state scans"),
        0,
        || {
            let before_alloc = ALLOC.allocated_bytes();
            for _ in 0..MEASURED_SCANS {
                writer.flush();
            }
            ALLOC.allocated_bytes() - before_alloc
        },
    );
    assert_eq!(
        writer.local_in_limbo(),
        PROTECTED,
        "{scheme_name}: protected nodes must survive every scan"
    );
}

/// Nodes retired per growth cycle — deliberately far past both `RETIRED` (the
/// bag level every earlier phase reached) and a single segment, so each cycle
/// regrows the bag well beyond the level it held at measurement start.
const GROWTH_BATCH: usize = 500;
/// Growth cycles per measured attempt.
const GROWTH_CYCLES: usize = 4;

/// Runs retire-then-reclaim growth cycles and asserts the only allocator
/// traffic is the retired `Box<u64>` nodes themselves (8 bytes each): all
/// segment-chain growth must be fed by the handle's recycled pool.
/// `before_flush` runs between the retires and the flush of every cycle (the
/// Cadence-family schemes advance their manual clock there so the fresh nodes
/// age past `T + ε`); it must not allocate.
fn assert_growth_allocates_nodes_only<H: SmrHandle>(
    scheme_name: &str,
    writer: &mut H,
    residue: usize,
    mut before_flush: impl FnMut(),
) {
    // Unmeasured warm-up cycle: reach the high-water mark once, stocking the
    // pool with enough segments for every later cycle.
    for _ in 0..GROWTH_BATCH {
        let ptr = Box::into_raw(Box::new(0u64));
        // SAFETY: freshly boxed, unlinked by construction, retired once.
        unsafe { qsense_repro::smr::retire_box(writer, ptr) };
    }
    before_flush();
    writer.flush();
    assert_eq!(writer.local_in_limbo(), residue);
    let node_bytes = (GROWTH_CYCLES * GROWTH_BATCH * std::mem::size_of::<u64>()) as u64;
    assert_alloc_delta(
        &format!("{scheme_name}: bag regrowth (nodes only)"),
        node_bytes,
        || {
            let before_alloc = ALLOC.allocated_bytes();
            for _ in 0..GROWTH_CYCLES {
                for _ in 0..GROWTH_BATCH {
                    let ptr = Box::into_raw(Box::new(0u64));
                    // SAFETY: freshly boxed, unlinked by construction, retired once.
                    unsafe { qsense_repro::smr::retire_box(writer, ptr) };
                }
                before_flush();
                writer.flush();
                assert_eq!(writer.local_in_limbo(), residue);
            }
            ALLOC.allocated_bytes() - before_alloc
        },
    );
}

/// Register → retire a batch → flush → drop, repeatedly: after the first
/// (unmeasured) wave parks its pool and scratch on the scheme's `HandleCache`,
/// the measured cycles must allocate exactly the retired nodes and nothing for
/// registration, scanning, or the drop-time hand-off. `before_flush` runs
/// between the retires and the flush of every cycle (the Cadence-family
/// schemes advance their manual clock there so the nodes age past `T + ε`);
/// it must not allocate.
fn churn_allocates_nodes_only<S: Smr>(
    scheme_name: &str,
    scheme: std::sync::Arc<S>,
    mut before_flush: impl FnMut(),
) {
    // First wave: builds the pool + scratch at their steady-state capacity,
    // then parks them in the scheme's handle cache at drop.
    {
        let mut first = scheme.register();
        for _ in 0..GROWTH_BATCH {
            let ptr = Box::into_raw(Box::new(0u64));
            // SAFETY: freshly boxed, unlinked by construction, retired once.
            unsafe { qsense_repro::smr::retire_box(&mut first, ptr) };
        }
        before_flush();
        first.flush();
        assert_eq!(first.local_in_limbo(), 0, "{scheme_name}: warm-up drains");
    }
    let node_bytes = (GROWTH_CYCLES * GROWTH_BATCH * std::mem::size_of::<u64>()) as u64;
    assert_alloc_delta(
        &format!("{scheme_name}: register/drop/register churn (nodes only)"),
        node_bytes,
        || {
            let before_alloc = ALLOC.allocated_bytes();
            for _ in 0..GROWTH_CYCLES {
                let mut handle = scheme.register();
                for _ in 0..GROWTH_BATCH {
                    let ptr = Box::into_raw(Box::new(0u64));
                    // SAFETY: freshly boxed, unlinked by construction, retired once.
                    unsafe { qsense_repro::smr::retire_box(&mut handle, ptr) };
                }
                before_flush();
                handle.flush();
                assert_eq!(handle.local_in_limbo(), 0);
            }
            ALLOC.allocated_bytes() - before_alloc
        },
    );
}

#[test]
fn steady_state_scans_perform_zero_heap_allocations() {
    // --- classic hazard pointers -------------------------------------------
    {
        let clock = ManualClock::new();
        let scheme = Hazard::new(config(&clock));
        let mut reader = scheme.register();
        let mut writer = scheme.register();
        park_protected_residue(&mut reader, &mut writer);
        // Warm-up: one scan frees the unprotected majority and grows the scan
        // scratch buffer and bag to steady-state capacity.
        writer.flush();
        assert_eq!(writer.local_in_limbo(), PROTECTED);
        assert_scans_do_not_allocate("hp", &mut writer);
        assert_growth_allocates_nodes_only("hp", &mut writer, PROTECTED, || {});
        reader.clear_protections();
        writer.flush();
        assert_eq!(writer.local_in_limbo(), 0, "hp: release frees the residue");
    }

    // --- park / adopt hand-off (hazard) ------------------------------------
    // Dropping a handle with still-protected leftovers parks them on the scheme
    // (O(1) chain splice); the next surviving handle's flush adopts the chain
    // and scans it. Neither side may touch the allocator. The whole scenario is
    // rebuilt per retry attempt (a park/adopt cycle is one-shot).
    assert_alloc_delta("hp: park/adopt handle-drop cycle", 0, || {
        let clock = ManualClock::new();
        let scheme = Hazard::new(config(&clock).with_max_threads(3));
        let mut reader = scheme.register();
        let mut survivor = scheme.register();
        // Warm the survivor's scratch buffer (and exercise an empty adopt).
        survivor.flush();
        let mut dying = scheme.register();
        park_protected_residue(&mut reader, &mut dying);
        dying.flush();
        assert_eq!(dying.local_in_limbo(), PROTECTED);

        let before_alloc = ALLOC.allocated_bytes();
        drop(dying); // park: splice into the scheme's parked chain
        survivor.flush(); // adopt: splice back and scan (residue still protected)
        let delta = ALLOC.allocated_bytes() - before_alloc;

        assert_eq!(
            survivor.local_in_limbo(),
            PROTECTED,
            "hp: the survivor must have adopted the parked residue"
        );
        reader.clear_protections();
        survivor.flush();
        assert_eq!(survivor.local_in_limbo(), 0, "hp: adopted residue is freed");
        delta
    });

    // --- Cadence (fence-free HP + deferred reclamation) --------------------
    {
        let clock = ManualClock::new();
        let scheme = Cadence::new(config(&clock));
        let mut reader = scheme.register();
        let mut writer = scheme.register();
        park_protected_residue(&mut reader, &mut writer);
        // Age every node past T + ε so only protection keeps the residue alive.
        clock.advance(Duration::from_millis(10));
        writer.flush();
        assert_eq!(writer.local_in_limbo(), PROTECTED);
        assert_scans_do_not_allocate("cadence", &mut writer);
        reader.clear_protections();
        writer.flush();
        assert_eq!(writer.local_in_limbo(), 0);
    }

    // --- QSense (hybrid) ---------------------------------------------------
    {
        let clock = ManualClock::new();
        let scheme = QSense::new(config(&clock));
        let mut reader = scheme.register();
        let mut writer = scheme.register();
        park_protected_residue(&mut reader, &mut writer);
        clock.advance(Duration::from_millis(10));
        // Warm up: quiescent states plus one full Cadence pass. The reader never
        // quiesces, so the epoch cannot advance during the measured window — every
        // measured flush exercises the cursor poll and the Cadence keep path.
        writer.flush();
        writer.flush();
        assert_eq!(writer.local_in_limbo(), PROTECTED);
        assert_scans_do_not_allocate("qsense", &mut writer);
        // Growth cycles share one pool across the three epoch-bucket bags, so
        // regrowing past the prior level recycles instead of allocating. The
        // manual clock advances each cycle so the Cadence age check can free
        // the fresh batch (the epoch is stuck: the reader never quiesces).
        assert_growth_allocates_nodes_only("qsense", &mut writer, PROTECTED, || {
            clock.advance(Duration::from_millis(10));
        });
        reader.clear_protections();
        writer.flush();
        assert_eq!(writer.local_in_limbo(), 0);
    }

    // --- EBR (per-epoch segment chains) ------------------------------------
    {
        let clock = ManualClock::new();
        let scheme = Ebr::new(config(&clock));
        let mut blocker = scheme.register();
        let mut writer = scheme.register();
        // Growth cycles with a free-running epoch: every flush advances far
        // enough to drain the chains wholesale, so the pool feeds each regrowth.
        assert_growth_allocates_nodes_only("ebr", &mut writer, 0, || {});

        // Keep path: a thread pinned at an old epoch blocks reclamation, so
        // flushes must retain the limbo chains — checking bucket tags only,
        // allocating nothing, no matter how many nodes are in limbo. Each retry
        // attempt drains the previous attempt's limbo first so the pool feeds
        // every regrowth.
        let node_bytes = (GROWTH_BATCH * std::mem::size_of::<u64>()) as u64;
        assert_alloc_delta("ebr: stuck-epoch retires (nodes only)", node_bytes, || {
            blocker.end_op();
            writer.flush();
            assert_eq!(writer.local_in_limbo(), 0);
            blocker.begin_op();

            let before_alloc = ALLOC.allocated_bytes();
            for _ in 0..GROWTH_BATCH {
                writer.begin_op();
                let ptr = Box::into_raw(Box::new(0u64));
                // SAFETY: freshly boxed, unlinked by construction, retired once.
                unsafe { qsense_repro::smr::retire_box(&mut writer, ptr) };
                writer.end_op();
            }
            for _ in 0..MEASURED_SCANS {
                writer.flush();
            }
            let delta = ALLOC.allocated_bytes() - before_alloc;
            assert_eq!(
                writer.local_in_limbo(),
                GROWTH_BATCH,
                "ebr: a pinned thread must keep the limbo chains intact"
            );
            delta
        });
        blocker.end_op();
        writer.flush();
        assert_eq!(
            writer.local_in_limbo(),
            0,
            "ebr: unpinning drains the limbo"
        );
    }

    // --- Hazard Eras (era-interval chains) ----------------------------------
    {
        let clock = ManualClock::new();
        let scheme = He::new(config(&clock));
        let mut blocker = scheme.register();
        let mut writer = scheme.register();
        // Growth cycles with no active reservation: every flush advances the
        // era and frees the chains wholesale, so the pool feeds each regrowth.
        assert_growth_allocates_nodes_only("he", &mut writer, 0, || {});

        // Keep path: a reader stalled mid-operation announces an era interval;
        // unstamped (birth-0) retires are treated as born before every era, so
        // the reservation pins them all. Flushes must retain the chains while
        // snapshotting the N reservations into the pre-sized scratch —
        // allocating nothing, no matter how many nodes are in limbo.
        let node_bytes = (GROWTH_BATCH * std::mem::size_of::<u64>()) as u64;
        assert_alloc_delta(
            "he: stalled-reservation retires (nodes only)",
            node_bytes,
            || {
                blocker.end_op();
                writer.flush();
                assert_eq!(writer.local_in_limbo(), 0);
                blocker.begin_op();

                let before_alloc = ALLOC.allocated_bytes();
                for _ in 0..GROWTH_BATCH {
                    writer.begin_op();
                    let ptr = Box::into_raw(Box::new(0u64));
                    // SAFETY: freshly boxed, unlinked by construction, retired once.
                    unsafe { qsense_repro::smr::retire_box(&mut writer, ptr) };
                    writer.end_op();
                }
                for _ in 0..MEASURED_SCANS {
                    writer.flush();
                }
                let delta = ALLOC.allocated_bytes() - before_alloc;
                assert_eq!(
                    writer.local_in_limbo(),
                    GROWTH_BATCH,
                    "he: a stalled reservation must keep unstamped nodes in limbo"
                );
                delta
            },
        );
        blocker.end_op();
        writer.flush();
        assert_eq!(
            writer.local_in_limbo(),
            0,
            "he: withdrawing the reservation drains the limbo"
        );
    }

    // --- Hazard Eras, adaptive era policy ------------------------------------
    // The pacer's machinery — the striped limbo report each scan files, the
    // interval adaptation, the per-alloc interval load — runs on a fixed
    // inline array built at scheme creation, so switching HE to the adaptive
    // policy must add exactly zero steady-state allocations: growth cycles
    // still allocate the nodes alone, and keep-path scans under a stalled
    // reservation (the exact state that drives the adaptation hardest, with
    // limbo far past the low-water mark) still allocate nothing at all.
    {
        let clock = ManualClock::new();
        let scheme = He::new(config(&clock).with_era_policy(EraAdvancePolicy::Adaptive {
            min_interval: 8,
            max_interval: 64,
            limbo_low_water: 32,
        }));
        let mut blocker = scheme.register();
        let mut writer = scheme.register();
        assert_growth_allocates_nodes_only("he-adaptive", &mut writer, 0, || {});

        let node_bytes = (GROWTH_BATCH * std::mem::size_of::<u64>()) as u64;
        assert_alloc_delta(
            "he-adaptive: stalled-reservation retires (nodes only)",
            node_bytes,
            || {
                blocker.end_op();
                writer.flush();
                assert_eq!(writer.local_in_limbo(), 0);
                blocker.begin_op();

                let before_alloc = ALLOC.allocated_bytes();
                for _ in 0..GROWTH_BATCH {
                    writer.begin_op();
                    let ptr = Box::into_raw(Box::new(0u64));
                    // SAFETY: freshly boxed, unlinked by construction, retired once.
                    unsafe { qsense_repro::smr::retire_box(&mut writer, ptr) };
                    writer.end_op();
                }
                for _ in 0..MEASURED_SCANS {
                    writer.flush();
                }
                let delta = ALLOC.allocated_bytes() - before_alloc;
                assert_eq!(
                    writer.local_in_limbo(),
                    GROWTH_BATCH,
                    "he-adaptive: a stalled reservation must keep unstamped nodes in limbo"
                );
                delta
            },
        );
        assert!(
            scheme.pacer().limbo_estimate() >= GROWTH_BATCH,
            "the measured scans reported the limbo pressure"
        );
        assert_eq!(
            scheme.pacer().current_interval(),
            8,
            "pressure drove the interval to the fast end without allocating"
        );
        blocker.end_op();
        writer.flush();
        assert_eq!(writer.local_in_limbo(), 0);
    }

    // --- handle churn (register / drop / register) --------------------------
    // Thread-pool pattern: each cycle registers a fresh handle, retires a
    // batch, flushes and drops the handle. After the unmeasured first wave has
    // stocked the scheme's HandleCache, every later registration adopts the
    // parked pool (+ scratch), so churn cycles allocate only the retired nodes
    // themselves.
    churn_allocates_nodes_only("hp", Hazard::new(config(&ManualClock::new())), || {});
    churn_allocates_nodes_only("qsbr", Qsbr::new(config(&ManualClock::new())), || {});
    churn_allocates_nodes_only("ebr", Ebr::new(config(&ManualClock::new())), || {});
    churn_allocates_nodes_only("he", He::new(config(&ManualClock::new())), || {});
    churn_allocates_nodes_only("rc", RefCount::new(config(&ManualClock::new())), || {});
    {
        // The deferred-reclamation schemes free only nodes older than T + ε:
        // advance their manual clock each cycle so every flush drains.
        let clock = ManualClock::new();
        churn_allocates_nodes_only("cadence", Cadence::new(config(&clock)), || {
            clock.advance(Duration::from_millis(10));
        });
        let clock = ManualClock::new();
        churn_allocates_nodes_only("qsense", QSense::new(config(&clock)), || {
            clock.advance(Duration::from_millis(10));
        });
    }

    // --- guard-API structures across the full matrix -------------------------
    // The six migrated structures drive the same retirement pipeline through
    // the safe guard layer (`reclaim_core::guard`), so the zero-allocation
    // contract must survive the indirection. For every structure × scheme
    // cell: steady-state flushes allocate nothing. For the fixed-node-size
    // structures additionally: a whole churn cycle (insert every key, remove
    // every key, flush) allocates exactly what the quietest earlier cycle
    // allocated — the nodes themselves — because all bag/scratch growth is fed
    // by recycled segments. (The skip list draws random tower heights, so its
    // per-cycle node bytes are not constant and it gets the flush check only;
    // the leaky baseline never drains its bag, so its amortized segment growth
    // exempts it from the cycle check too.)
    {
        use qsense_repro::bench::{make_set, SchemeKind, SetSession, Structure};

        const CHURN_KEYS: u64 = 48;
        fn churn_cycle(session: &mut dyn SetSession, clock: &ManualClock) {
            for key in 0..CHURN_KEYS {
                session.insert(key);
            }
            for key in 0..CHURN_KEYS {
                session.remove(key);
            }
            // Ages the Cadence-family limbo past T + ε; a no-op for the rest.
            clock.advance(Duration::from_millis(10));
            session.flush();
        }

        for structure in [
            Structure::List,
            Structure::SkipList,
            Structure::Bst,
            Structure::HashMap,
            Structure::Queue,
            Structure::Stack,
        ] {
            for kind in SchemeKind::extended() {
                let clock = ManualClock::new();
                let set = make_set(structure, kind, config(&clock).with_max_threads(4));
                let mut session = set.session();
                // Warm-up: reach steady-state pool/scratch capacity.
                churn_cycle(&mut *session, &clock);
                churn_cycle(&mut *session, &clock);
                assert_alloc_delta(
                    &format!("{structure:?}/{kind:?}: steady-state flushes"),
                    0,
                    || {
                        let before_alloc = ALLOC.allocated_bytes();
                        for _ in 0..25 {
                            session.flush();
                        }
                        ALLOC.allocated_bytes() - before_alloc
                    },
                );
                if structure != Structure::SkipList && kind != SchemeKind::None {
                    // The quietest of three cycles is the true node-only cost
                    // (stray harness allocations only ever add to a window).
                    let mut nodes_only = u64::MAX;
                    for _ in 0..3 {
                        let before_alloc = ALLOC.allocated_bytes();
                        churn_cycle(&mut *session, &clock);
                        nodes_only = nodes_only.min(ALLOC.allocated_bytes() - before_alloc);
                    }
                    assert!(
                        nodes_only > 0,
                        "{structure:?}/{kind:?}: churn must allocate the nodes themselves"
                    );
                    assert_alloc_delta(
                        &format!("{structure:?}/{kind:?}: churn cycle (nodes only)"),
                        nodes_only,
                        || {
                            let before_alloc = ALLOC.allocated_bytes();
                            churn_cycle(&mut *session, &clock);
                            ALLOC.allocated_bytes() - before_alloc
                        },
                    );
                }
            }
        }
    }

    // --- telemetry record + snapshot paths -----------------------------------
    // With the observability layer live (histograms on, every op sampled), the
    // whole record surface — the guard-bracket latency sample, the retire-tick
    // stamp, the scan observer's per-free delay records — and the
    // `Telemetry::summary()` snapshot must stay allocation-free: the
    // histograms are fixed inline arrays and the per-handle cursor is plain
    // fields. Each scheme runs warmed-up retire→flush cycles under the full
    // telemetry bracket and must allocate exactly the retired nodes; the
    // leaky baseline (whose bag never drains, so its amortized segment growth
    // breaks the exact-delta assertion) runs the op bracket and snapshot loop
    // alone.
    {
        fn telemetry_cycles_allocate_nodes_only<S: Smr>(
            scheme_name: &str,
            scheme: Arc<S>,
            clock: &ManualClock,
        ) {
            let mut writer = scheme.register();
            let telemetry =
                Smr::telemetry(&*scheme).expect("telemetry is enabled for this section");
            let cycle = |writer: &mut S::Handle| {
                for _ in 0..GROWTH_BATCH {
                    let started = writer.telemetry_op_begin();
                    writer.begin_op();
                    let ptr = Box::into_raw(Box::new(0u64));
                    // SAFETY: freshly boxed, unlinked by construction, retired once.
                    unsafe { qsense_repro::smr::retire_box(writer, ptr) };
                    writer.end_op();
                    if let Some(started) = started {
                        writer.telemetry_op_end(started);
                    }
                }
                clock.advance(Duration::from_millis(10));
                writer.flush();
                let summary = telemetry.summary();
                assert!(
                    !summary.op_latency_ns.is_empty(),
                    "{scheme_name}: sampled brackets recorded"
                );
            };
            // Warm-up: steady-state pool capacity, first histogram touches.
            cycle(&mut writer);
            assert_eq!(writer.local_in_limbo(), 0, "{scheme_name}: warm-up drains");
            let node_bytes = (GROWTH_CYCLES * GROWTH_BATCH * std::mem::size_of::<u64>()) as u64;
            assert_alloc_delta(
                &format!("{scheme_name}: telemetry-on retire cycles (nodes only)"),
                node_bytes,
                || {
                    let before_alloc = ALLOC.allocated_bytes();
                    for _ in 0..GROWTH_CYCLES {
                        cycle(&mut writer);
                    }
                    ALLOC.allocated_bytes() - before_alloc
                },
            );
            let summary = telemetry.summary();
            assert!(
                !summary.reclaim_delay_us.is_empty(),
                "{scheme_name}: every drained node recorded its retire->free delay"
            );
        }

        let tele_config = |clock: &ManualClock| {
            config(clock)
                .with_telemetry(true)
                .with_telemetry_sample_shift(0)
        };
        let clock = ManualClock::new();
        telemetry_cycles_allocate_nodes_only("hp", Hazard::new(tele_config(&clock)), &clock);
        let clock = ManualClock::new();
        telemetry_cycles_allocate_nodes_only("qsbr", Qsbr::new(tele_config(&clock)), &clock);
        let clock = ManualClock::new();
        telemetry_cycles_allocate_nodes_only("ebr", Ebr::new(tele_config(&clock)), &clock);
        let clock = ManualClock::new();
        telemetry_cycles_allocate_nodes_only("he", He::new(tele_config(&clock)), &clock);
        let clock = ManualClock::new();
        telemetry_cycles_allocate_nodes_only("rc", RefCount::new(tele_config(&clock)), &clock);
        let clock = ManualClock::new();
        telemetry_cycles_allocate_nodes_only("cadence", Cadence::new(tele_config(&clock)), &clock);
        let clock = ManualClock::new();
        telemetry_cycles_allocate_nodes_only("qsense", QSense::new(tele_config(&clock)), &clock);

        // Leaky: the op bracket and the snapshot path alone (no retires — its
        // bag would grow without bound and bill segment growth to the window).
        {
            let clock = ManualClock::new();
            let scheme = Leaky::new(tele_config(&clock));
            let mut handle = scheme.register();
            let telemetry = Smr::telemetry(&*scheme).expect("telemetry is enabled");
            // Warm-up: first bracket and snapshot.
            let started = handle.telemetry_op_begin();
            handle.begin_op();
            handle.end_op();
            if let Some(started) = started {
                handle.telemetry_op_end(started);
            }
            let _ = telemetry.summary();
            assert_alloc_delta("none: telemetry brackets + snapshots", 0, || {
                let before_alloc = ALLOC.allocated_bytes();
                for _ in 0..256 {
                    let started = handle.telemetry_op_begin();
                    handle.begin_op();
                    handle.end_op();
                    if let Some(started) = started {
                        handle.telemetry_op_end(started);
                    }
                    let summary = telemetry.summary();
                    assert!(!summary.op_latency_ns.is_empty());
                }
                ALLOC.allocated_bytes() - before_alloc
            });
        }
    }

    // --- lease checkout / checkin ------------------------------------------
    // The M:N lease layer sits on the session hot path (a server checks a
    // handle out per request), so borrowing must be as quiet as the pipeline
    // it lends out: the pool's idle stack is pre-sized to `slots` at
    // construction and a checkin can never push past it, so steady-state
    // checkout (mutex + Vec pop) and checkin (mutex + Vec push) are
    // allocation-free — for the blocking, non-blocking, and drop-driven
    // checkin paths alike, and regardless of interleaving depth.
    {
        use qsense_repro::smr::{LeasePolicy, LeasePool};

        let scheme = Hazard::new(config(&ManualClock::new()).with_max_threads(4));
        let pool =
            LeasePool::for_scheme(&scheme, 3, LeasePolicy::Fail).expect("3 handles fit 4 slots");
        // Warm-up: first checkout of every handle (and a failed checkout).
        {
            let _a = pool.checkout().expect("warm-up lease");
            let _b = pool.try_checkout();
            let _c = pool.try_checkout();
            assert!(pool.try_checkout().is_none(), "pool is fully lent out");
        }
        assert_eq!(pool.idle_count(), 3, "warm-up returned every handle");
        assert_alloc_delta("lease checkout/checkin cycles", 0, || {
            let before_alloc = ALLOC.allocated_bytes();
            for _ in 0..256 {
                // Deep interleaving: all three handles out at once, the
                // overflow checkout shed by the fail policy, LIFO checkin.
                let a = pool.checkout().expect("lease 1");
                let b = pool.try_checkout().expect("lease 2");
                let c = pool.try_checkout().expect("lease 3");
                assert!(pool.checkout().is_err(), "fail policy sheds the 4th");
                drop(b);
                let b2 = pool.try_checkout().expect("checkin reopened the pool");
                drop(a);
                drop(c);
                drop(b2);
            }
            assert_eq!(pool.idle_count(), 3);
            ALLOC.allocated_bytes() - before_alloc
        });
    }

    // --- stats snapshots ---------------------------------------------------
    // Off the hot path but used by monitoring loops: summing the sharded counter
    // stripes must not allocate either. (Kept in the same #[test] so no
    // concurrently running case can disturb the process-wide counter.)
    {
        let scheme: Arc<Hazard> = Hazard::new(
            SmrConfig::default()
                .with_max_threads(4)
                .with_rooster_threads(0),
        );
        let handle = scheme.register();
        let _ = scheme.stats(); // warm-up
        assert_alloc_delta("stats snapshot", 0, || {
            let before = ALLOC.allocated_bytes();
            for _ in 0..100 {
                let snap = scheme.stats();
                assert!(snap.retired >= snap.freed);
            }
            ALLOC.allocated_bytes() - before
        });
        drop(handle);
    }
}
