//! Steady-state scans must not allocate.
//!
//! The hot-path contract (see `reclaim-core`'s module docs): once a thread's
//! retired bag and scan scratch buffer have reached their steady-state capacity,
//! a reclamation pass — the hazard-pointer snapshot plus
//! `RetiredBag::reclaim_if` — performs **zero heap allocations**. This test pins
//! that property with the process-wide counting allocator: it parks a few
//! protected (hence unreclaimable) nodes in a handle's bag, then runs many scans
//! and asserts the allocator's `allocated_bytes` counter does not move.
//!
//! Everything runs in a single `#[test]` so no concurrent test case can disturb
//! the global allocation counters.

use qsense_repro::smr::{
    Cadence, Clock, CountingAllocator, Hazard, ManualClock, QSense, Smr, SmrConfig, SmrHandle,
};
use std::sync::Arc;
use std::time::Duration;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Number of nodes kept protected (and therefore unreclaimed) across the
/// measured scans, so every scan exercises the keep path of `reclaim_if`.
const PROTECTED: usize = 8;
/// Nodes retired in total; the unprotected majority is freed during warm-up.
const RETIRED: usize = 64;
/// Scans performed while asserting allocation-freedom.
const MEASURED_SCANS: usize = 100;

fn config(clock: &ManualClock) -> SmrConfig {
    SmrConfig::default()
        .with_max_threads(2)
        .with_hp_per_thread(PROTECTED)
        // No background rooster threads: nothing else may touch the allocator
        // while the steady-state window is measured.
        .with_rooster_threads(0)
        .with_rooster_interval(Duration::from_millis(1))
        // High thresholds: scans happen only when the test calls flush().
        .with_quiescence_threshold(1_000_000)
        .with_scan_threshold(1_000_000)
        .with_clock(Clock::manual(clock.clone()))
}

/// Retires `RETIRED` boxed nodes through `writer`, with the first `PROTECTED` of
/// them protected by `reader` (protection is published before the retire, as the
/// integration discipline requires, so they must survive every scan).
fn park_protected_residue<H: SmrHandle>(reader: &mut H, writer: &mut H) {
    for i in 0..RETIRED {
        let ptr = Box::into_raw(Box::new(0u64));
        if i < PROTECTED {
            reader.protect(i, ptr.cast());
        }
        // SAFETY: freshly boxed, unlinked by construction, retired once.
        unsafe { qsense_repro::smr::retire_box(writer, ptr) };
    }
}

/// Runs `MEASURED_SCANS` flushes and asserts the allocator counter stands still.
fn assert_scans_do_not_allocate<H: SmrHandle>(scheme_name: &str, writer: &mut H) {
    let before_alloc = ALLOC.allocated_bytes();
    for _ in 0..MEASURED_SCANS {
        writer.flush();
    }
    let after_alloc = ALLOC.allocated_bytes();
    assert_eq!(
        after_alloc - before_alloc,
        0,
        "{scheme_name}: {MEASURED_SCANS} steady-state scans allocated {} bytes",
        after_alloc - before_alloc
    );
    assert_eq!(
        writer.local_in_limbo(),
        PROTECTED,
        "{scheme_name}: protected nodes must survive every scan"
    );
}

#[test]
fn steady_state_scans_perform_zero_heap_allocations() {
    // --- classic hazard pointers -------------------------------------------
    {
        let clock = ManualClock::new();
        let scheme = Hazard::new(config(&clock));
        let mut reader = scheme.register();
        let mut writer = scheme.register();
        park_protected_residue(&mut reader, &mut writer);
        // Warm-up: one scan frees the unprotected majority and grows the scan
        // scratch buffer and bag to steady-state capacity.
        writer.flush();
        assert_eq!(writer.local_in_limbo(), PROTECTED);
        assert_scans_do_not_allocate("hp", &mut writer);
        reader.clear_protections();
        writer.flush();
        assert_eq!(writer.local_in_limbo(), 0, "hp: release frees the residue");
    }

    // --- Cadence (fence-free HP + deferred reclamation) --------------------
    {
        let clock = ManualClock::new();
        let scheme = Cadence::new(config(&clock));
        let mut reader = scheme.register();
        let mut writer = scheme.register();
        park_protected_residue(&mut reader, &mut writer);
        // Age every node past T + ε so only protection keeps the residue alive.
        clock.advance(Duration::from_millis(10));
        writer.flush();
        assert_eq!(writer.local_in_limbo(), PROTECTED);
        assert_scans_do_not_allocate("cadence", &mut writer);
        reader.clear_protections();
        writer.flush();
        assert_eq!(writer.local_in_limbo(), 0);
    }

    // --- QSense (hybrid) ---------------------------------------------------
    {
        let clock = ManualClock::new();
        let scheme = QSense::new(config(&clock));
        let mut reader = scheme.register();
        let mut writer = scheme.register();
        park_protected_residue(&mut reader, &mut writer);
        clock.advance(Duration::from_millis(10));
        // Warm up: quiescent states plus one full Cadence pass. The reader never
        // quiesces, so the epoch cannot advance during the measured window — every
        // measured flush exercises the cursor poll and the Cadence keep path.
        writer.flush();
        writer.flush();
        assert_eq!(writer.local_in_limbo(), PROTECTED);
        assert_scans_do_not_allocate("qsense", &mut writer);
        reader.clear_protections();
        writer.flush();
        assert_eq!(writer.local_in_limbo(), 0);
    }

    // --- stats snapshots ---------------------------------------------------
    // Off the hot path but used by monitoring loops: summing the sharded counter
    // stripes must not allocate either. (Kept in the same #[test] so no
    // concurrently running case can disturb the process-wide counter.)
    {
        let scheme: Arc<Hazard> = Hazard::new(
            SmrConfig::default()
                .with_max_threads(4)
                .with_rooster_threads(0),
        );
        let handle = scheme.register();
        let _ = scheme.stats(); // warm-up
        let before = ALLOC.allocated_bytes();
        for _ in 0..100 {
            let snap = scheme.stats();
            assert!(snap.retired >= snap.freed);
        }
        assert_eq!(
            ALLOC.allocated_bytes() - before,
            0,
            "stats snapshot allocated"
        );
        drop(handle);
    }
}
