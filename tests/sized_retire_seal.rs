//! The size-unknown retire path is sealed: every structure, on every scheme,
//! retires exclusively through the sized, birth-era-stamped path.
//!
//! The guard layer (`reclaim_core::guard`) stamps the allocation size into every
//! retire ([`Unlinked::retire`] and [`Guard::retire_raw`] both route
//! `retire_sized` with a non-zero size), and the schemes count any retire that
//! arrives without a size (`size_bytes == 0`) in
//! [`StatsSnapshot::size_unknown_retires`]. These tests churn each structure on
//! each of the eight schemes and pin that counter at zero — a regression here
//! means some call site bypassed the sized path and byte-denominated limbo
//! accounting silently under-reports.

use qsense_repro::ds::{
    HarrisMichaelList, LockFreeBst, LockFreeHashMap, LockFreeSkipList, MichaelScottQueue,
    TreiberStack, SKIPLIST_HP_SLOTS,
};
use qsense_repro::smr::{Cadence, Ebr, Hazard, He, Leaky, QSense, Qsbr, RefCount, Smr, SmrConfig};
use std::sync::Arc;

const KEYS: u64 = 200;

fn config() -> SmrConfig {
    SmrConfig::default()
        .with_max_threads(4)
        // Large enough for every structure (the skip list is the max).
        .with_hp_per_thread(SKIPLIST_HP_SLOTS)
        .with_quiescence_threshold(8)
        .with_scan_threshold(16)
        .with_fallback_threshold(128)
        .with_rooster_threads(1)
        .with_rooster_interval(std::time::Duration::from_millis(1))
}

fn churn_list<S: Smr>(scheme: &Arc<S>) {
    let set = HarrisMichaelList::new(Arc::clone(scheme));
    let mut h = set.register();
    for k in 0..KEYS {
        set.insert(k, &mut h);
    }
    for k in 0..KEYS {
        set.remove(&k, &mut h);
    }
}

fn churn_skiplist<S: Smr>(scheme: &Arc<S>) {
    let set = LockFreeSkipList::new(Arc::clone(scheme));
    let mut h = set.register();
    for k in 0..KEYS {
        set.insert(k, &mut h);
    }
    for k in 0..KEYS {
        set.remove(&k, &mut h);
    }
}

fn churn_bst<S: Smr>(scheme: &Arc<S>) {
    let set = LockFreeBst::new(Arc::clone(scheme));
    let mut h = set.register();
    for k in 0..KEYS {
        set.insert(k, &mut h);
    }
    for k in 0..KEYS {
        set.remove(&k, &mut h);
    }
}

fn churn_hashmap<S: Smr>(scheme: &Arc<S>) {
    let map = LockFreeHashMap::with_buckets(Arc::clone(scheme), 64);
    let mut h = map.register();
    for k in 0..KEYS {
        map.insert(k, k, &mut h);
    }
    for k in 0..KEYS {
        map.remove(&k, &mut h);
    }
}

fn churn_stack<S: Smr>(scheme: &Arc<S>) {
    let stack = TreiberStack::new(Arc::clone(scheme));
    let mut h = stack.register();
    for k in 0..KEYS {
        stack.push(k, &mut h);
    }
    while stack.pop(&mut h).is_some() {}
}

fn churn_queue<S: Smr>(scheme: &Arc<S>) {
    let queue = MichaelScottQueue::new(Arc::clone(scheme));
    let mut h = queue.register();
    for k in 0..KEYS {
        queue.enqueue(k, &mut h);
    }
    while queue.dequeue(&mut h).is_some() {}
}

/// Churn all six structures on one scheme instance, then pin the counter.
macro_rules! seal_test {
    ($name:ident, $ctor:expr) => {
        #[test]
        fn $name() {
            let scheme = $ctor;
            churn_list(&scheme);
            churn_skiplist(&scheme);
            churn_bst(&scheme);
            churn_hashmap(&scheme);
            churn_stack(&scheme);
            churn_queue(&scheme);
            let stats = scheme.stats();
            assert!(
                stats.retired > 0,
                "the churn must actually exercise the retire path"
            );
            assert_eq!(
                stats.size_unknown_retires, 0,
                "every retire must flow through the sized path"
            );
        }
    };
}

seal_test!(sized_retires_only_under_leaky, Leaky::new(config()));
seal_test!(sized_retires_only_under_qsbr, Qsbr::new(config()));
seal_test!(sized_retires_only_under_hp, Hazard::new(config()));
seal_test!(sized_retires_only_under_cadence, Cadence::new(config()));
seal_test!(sized_retires_only_under_qsense, QSense::new(config()));
seal_test!(sized_retires_only_under_ebr, Ebr::new(config()));
seal_test!(sized_retires_only_under_he, He::new(config()));
seal_test!(sized_retires_only_under_refcount, RefCount::new(config()));
