//! Property-based tests for the extension structures and baseline schemes: on
//! arbitrary operation sequences the hash map must behave like `BTreeMap`, the queue
//! like `VecDeque`, the stack like `Vec`, and the paper's structures must keep
//! behaving like `BTreeSet` under the two reclamation baselines this reproduction
//! adds (EBR, reference counting). The `*_on_every_scheme` cases replay one
//! generated sequence across all eight schemes, pinning the full
//! structure × scheme matrix now that every structure runs on the guard API.

use proptest::collection::vec;
use proptest::prelude::*;
use qsense_repro::bench::{make_set, SchemeKind, Structure};
use qsense_repro::ds::{
    LockFreeHashMap, MichaelScottQueue, TreiberStack, HASHMAP_HP_SLOTS, QUEUE_HP_SLOTS,
    STACK_HP_SLOTS,
};
use qsense_repro::smr::{
    Cadence, Ebr, Hazard, He, Leaky, QSense, Qsbr, RefCount, Smr, SmrConfig, SmrHandle,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

fn small_config(k: usize) -> SmrConfig {
    SmrConfig::default()
        .with_max_threads(4)
        .with_hp_per_thread(k)
        .with_quiescence_threshold(4)
        .with_scan_threshold(8)
        .with_fallback_threshold(64)
        .with_rooster_threads(1)
        .with_rooster_interval(std::time::Duration::from_millis(1))
}

/// One step of a generated map workload.
#[derive(Clone, Debug)]
enum MapStep {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Contains(u64),
}

fn map_step(key_range: u64) -> impl Strategy<Value = MapStep> {
    prop_oneof![
        ((0..key_range), any::<u64>()).prop_map(|(k, v)| MapStep::Insert(k, v)),
        (0..key_range).prop_map(MapStep::Remove),
        (0..key_range).prop_map(MapStep::Get),
        (0..key_range).prop_map(MapStep::Contains),
    ]
}

/// One step of a generated queue/stack workload.
#[derive(Clone, Debug)]
enum SeqStep {
    Push(u64),
    Pop,
}

fn seq_step() -> impl Strategy<Value = SeqStep> {
    prop_oneof![
        3 => any::<u64>().prop_map(SeqStep::Push),
        2 => Just(SeqStep::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hash_map_matches_btreemap(steps in vec(map_step(64), 1..400)) {
        let scheme = QSense::new(small_config(HASHMAP_HP_SLOTS));
        // A small bucket count forces chains so the list logic is exercised too.
        let map: LockFreeHashMap<u64, u64, QSense> =
            LockFreeHashMap::with_buckets(scheme, 8);
        let mut handle = map.register();
        let mut reference = BTreeMap::new();
        for step in &steps {
            match *step {
                MapStep::Insert(k, v) => {
                    let expect = !reference.contains_key(&k);
                    if expect {
                        reference.insert(k, v);
                    }
                    prop_assert_eq!(map.insert(k, v, &mut handle), expect);
                }
                MapStep::Remove(k) => {
                    prop_assert_eq!(map.remove(&k, &mut handle), reference.remove(&k).is_some());
                }
                MapStep::Get(k) => {
                    prop_assert_eq!(map.get(&k, &mut handle), reference.get(&k).copied());
                }
                MapStep::Contains(k) => {
                    prop_assert_eq!(map.contains_key(&k, &mut handle), reference.contains_key(&k));
                }
            }
        }
        prop_assert_eq!(map.len(), reference.len());
    }

    #[test]
    fn queue_matches_vecdeque(steps in vec(seq_step(), 1..400)) {
        let scheme = QSense::new(small_config(QUEUE_HP_SLOTS));
        let queue: MichaelScottQueue<u64, QSense> = MichaelScottQueue::new(scheme);
        let mut handle = queue.register();
        let mut reference: VecDeque<u64> = VecDeque::new();
        for step in &steps {
            match *step {
                SeqStep::Push(v) => {
                    queue.enqueue(v, &mut handle);
                    reference.push_back(v);
                }
                SeqStep::Pop => {
                    prop_assert_eq!(queue.dequeue(&mut handle), reference.pop_front());
                }
            }
            prop_assert_eq!(queue.len(), reference.len());
            prop_assert_eq!(queue.is_empty(), reference.is_empty());
        }
        // Drain and compare the tails element by element.
        while let Some(expected) = reference.pop_front() {
            prop_assert_eq!(queue.dequeue(&mut handle), Some(expected));
        }
        prop_assert_eq!(queue.dequeue(&mut handle), None);
    }

    #[test]
    fn stack_matches_vec(steps in vec(seq_step(), 1..400)) {
        let scheme = QSense::new(small_config(STACK_HP_SLOTS));
        let stack: TreiberStack<u64, QSense> = TreiberStack::new(scheme);
        let mut handle = stack.register();
        let mut reference: Vec<u64> = Vec::new();
        for step in &steps {
            match *step {
                SeqStep::Push(v) => {
                    stack.push(v, &mut handle);
                    reference.push(v);
                }
                SeqStep::Pop => {
                    prop_assert_eq!(stack.pop(&mut handle), reference.pop());
                }
            }
            prop_assert_eq!(stack.len(), reference.len());
        }
        while let Some(expected) = reference.pop() {
            prop_assert_eq!(stack.pop(&mut handle), Some(expected));
        }
        prop_assert_eq!(stack.pop(&mut handle), None);
    }
}

/// One step of a generated set workload (for the baseline-scheme coverage).
#[derive(Clone, Debug)]
enum SetStep {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn set_step(key_range: u64) -> impl Strategy<Value = SetStep> {
    prop_oneof![
        (0..key_range).prop_map(SetStep::Insert),
        (0..key_range).prop_map(SetStep::Remove),
        (0..key_range).prop_map(SetStep::Contains),
    ]
}

fn check_set(
    structure: Structure,
    scheme: SchemeKind,
    steps: &[SetStep],
) -> Result<(), TestCaseError> {
    let config = qsense_repro::bench::default_bench_config(4)
        .with_quiescence_threshold(4)
        .with_scan_threshold(8)
        .with_fallback_threshold(64)
        .with_rooster_interval(std::time::Duration::from_millis(1));
    let set = make_set(structure, scheme, config);
    let mut session = set.session();
    let mut reference = BTreeSet::new();
    for step in steps {
        match *step {
            SetStep::Insert(k) => prop_assert_eq!(session.insert(k), reference.insert(k)),
            SetStep::Remove(k) => prop_assert_eq!(session.remove(k), reference.remove(&k)),
            SetStep::Contains(k) => prop_assert_eq!(session.contains(k), reference.contains(&k)),
        }
    }
    session.flush();
    drop(session);
    prop_assert_eq!(set.len(), reference.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sets_match_reference_under_ebr(steps in vec(set_step(48), 1..300)) {
        for structure in [Structure::List, Structure::HashMap] {
            check_set(structure, SchemeKind::Ebr, &steps)?;
        }
    }

    #[test]
    fn sets_match_reference_under_refcount(steps in vec(set_step(48), 1..300)) {
        for structure in [Structure::List, Structure::HashMap] {
            check_set(structure, SchemeKind::RefCount, &steps)?;
        }
    }
}

/// Replays one generated queue workload against `VecDeque` on a concrete scheme.
fn check_queue<S: Smr>(scheme: Arc<S>, steps: &[SeqStep]) -> Result<(), TestCaseError> {
    let queue: MichaelScottQueue<u64, S> = MichaelScottQueue::new(scheme);
    let mut handle = queue.register();
    let mut reference: VecDeque<u64> = VecDeque::new();
    for step in steps {
        match *step {
            SeqStep::Push(v) => {
                queue.enqueue(v, &mut handle);
                reference.push_back(v);
            }
            SeqStep::Pop => {
                prop_assert_eq!(queue.dequeue(&mut handle), reference.pop_front());
            }
        }
    }
    while let Some(expected) = reference.pop_front() {
        prop_assert_eq!(queue.dequeue(&mut handle), Some(expected));
    }
    prop_assert_eq!(queue.dequeue(&mut handle), None);
    handle.flush();
    Ok(())
}

/// Replays one generated stack workload against `Vec` on a concrete scheme.
fn check_stack<S: Smr>(scheme: Arc<S>, steps: &[SeqStep]) -> Result<(), TestCaseError> {
    let stack: TreiberStack<u64, S> = TreiberStack::new(scheme);
    let mut handle = stack.register();
    let mut reference: Vec<u64> = Vec::new();
    for step in steps {
        match *step {
            SeqStep::Push(v) => {
                stack.push(v, &mut handle);
                reference.push(v);
            }
            SeqStep::Pop => {
                prop_assert_eq!(stack.pop(&mut handle), reference.pop());
            }
        }
    }
    while let Some(expected) = reference.pop() {
        prop_assert_eq!(stack.pop(&mut handle), Some(expected));
    }
    prop_assert_eq!(stack.pop(&mut handle), None);
    handle.flush();
    Ok(())
}

proptest! {
    // One generated sequence is replayed on every scheme, so a handful of cases
    // already covers the full 8-scheme row of the matrix.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sets_match_reference_on_every_scheme(steps in vec(set_step(48), 1..150)) {
        for structure in [
            Structure::List,
            Structure::SkipList,
            Structure::Bst,
            Structure::HashMap,
        ] {
            for scheme in SchemeKind::extended() {
                check_set(structure, scheme, &steps)?;
            }
        }
    }

    #[test]
    fn queue_matches_vecdeque_on_every_scheme(steps in vec(seq_step(), 1..200)) {
        check_queue(Leaky::new(small_config(QUEUE_HP_SLOTS)), &steps)?;
        check_queue(Qsbr::new(small_config(QUEUE_HP_SLOTS)), &steps)?;
        check_queue(Hazard::new(small_config(QUEUE_HP_SLOTS)), &steps)?;
        check_queue(Cadence::new(small_config(QUEUE_HP_SLOTS)), &steps)?;
        check_queue(QSense::new(small_config(QUEUE_HP_SLOTS)), &steps)?;
        check_queue(Ebr::new(small_config(QUEUE_HP_SLOTS)), &steps)?;
        check_queue(He::new(small_config(QUEUE_HP_SLOTS)), &steps)?;
        check_queue(RefCount::new(small_config(QUEUE_HP_SLOTS)), &steps)?;
    }

    #[test]
    fn stack_matches_vec_on_every_scheme(steps in vec(seq_step(), 1..200)) {
        check_stack(Leaky::new(small_config(STACK_HP_SLOTS)), &steps)?;
        check_stack(Qsbr::new(small_config(STACK_HP_SLOTS)), &steps)?;
        check_stack(Hazard::new(small_config(STACK_HP_SLOTS)), &steps)?;
        check_stack(Cadence::new(small_config(STACK_HP_SLOTS)), &steps)?;
        check_stack(QSense::new(small_config(STACK_HP_SLOTS)), &steps)?;
        check_stack(Ebr::new(small_config(STACK_HP_SLOTS)), &steps)?;
        check_stack(He::new(small_config(STACK_HP_SLOTS)), &steps)?;
        check_stack(RefCount::new(small_config(STACK_HP_SLOTS)), &steps)?;
    }
}

/// Non-proptest sanity check kept here because it documents the Arc-sharing pattern
/// used throughout the examples: one scheme instance shared by several structures.
#[test]
fn one_scheme_instance_can_back_several_structures() {
    let scheme = QSense::new(small_config(HASHMAP_HP_SLOTS.max(QUEUE_HP_SLOTS)));
    let map: LockFreeHashMap<u64, u64, QSense> =
        LockFreeHashMap::with_buckets(Arc::clone(&scheme), 16);
    let queue: MichaelScottQueue<u64, QSense> = MichaelScottQueue::new(Arc::clone(&scheme));
    let mut map_handle = map.register();
    let mut queue_handle = queue.register();
    for i in 0..200_u64 {
        assert!(map.insert(i, i, &mut map_handle));
        queue.enqueue(i, &mut queue_handle);
    }
    for i in 0..200_u64 {
        assert!(map.remove(&i, &mut map_handle));
        assert_eq!(queue.dequeue(&mut queue_handle), Some(i));
    }
    map_handle.flush();
    queue_handle.flush();
    use qsense_repro::smr::Smr;
    let stats = Smr::stats(&*scheme);
    assert_eq!(
        stats.retired,
        200 + 200,
        "both structures retire through the same scheme"
    );
    assert!(stats.freed <= stats.retired);
}
