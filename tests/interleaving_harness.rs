//! Deterministic interleaving regression tests.
//!
//! These tests use the `lockfree_ds::interleave` harness (cfg-gated pause
//! points at the validate/CAS boundaries of every structure) to force, every
//! run, the thread schedules that stress tests cross only once in millions of
//! operations. Each test documents the window it drives and the invariant that
//! makes (or made) the window dangerous.
//!
//! The headline schedule is the **skip-list upper-level re-link race**: a
//! complete `remove` (mark all levels + sweep + retire) slipped between
//! `insert`'s per-level validation (`succs[0] == node`) and its
//! `pred.next[level]` CAS. On the pre-versioned-link skip list this schedule
//! re-linked a *retired* node at an upper level (the assertion below failed
//! with the victim's address present in the level-1 chain); with versioned
//! links + remove's upper-level bump pass the stale CAS loses its version
//! validation and the victim stays unreachable, under every scheme.
//!
//! The harness hooks are process-global, so every test here serializes on
//! [`schedule_lock`].

use lockfree_ds::interleave::Trap;
use lockfree_ds::{HarrisMichaelList, LockFreeBst, LockFreeSkipList, SKIPLIST_HP_SLOTS};
use reclaim_core::{Smr, SmrConfig};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::thread;

/// Serializes the tests in this binary: the pause-point registry is global.
fn schedule_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A scheme config that never frees during the schedule: scans and quiescent
/// bookkeeping are pushed past the horizon so the post-schedule structure walk
/// (addresses only) is safe even when a schedule exposes a bug, and the forced
/// window is not perturbed by reclamation work inside `begin_op`.
fn deferred_config() -> SmrConfig {
    SmrConfig::for_skiplist()
        .with_max_threads(4)
        .with_hp_per_thread(SKIPLIST_HP_SLOTS)
        .with_scan_threshold(1 << 30)
        .with_quiescence_threshold(1 << 30)
        .with_fallback_threshold(1 << 30)
        .with_rooster_threads(0)
}

/// Forces the skip-list schedule:
///
/// 1. thread A runs `insert_with_height(10, 2)`: phase 1 links the node at
///    level 0, phase 2 validates `succs[0] == node` for level 1 and parks at
///    the pause point immediately before the `pred.next[1]` CAS;
/// 2. the main thread runs `remove(&10)` to completion — logical deletion of
///    every level, physical sweep, retire;
/// 3. thread A is released and takes (or, fixed: fails) its stale CAS.
///
/// Returns the victim's address and the level-1 chain after both threads
/// finished, so callers can assert the victim was not re-linked.
fn force_skiplist_relink_schedule<S: Smr>(scheme: Arc<S>) -> (usize, Vec<usize>) {
    let set = Arc::new(LockFreeSkipList::<u64, S>::new(scheme));
    let mut main_handle = set.register();

    // Neighbor keys so the victim has non-sentinel predecessors at level 0.
    assert!(set.insert(5, &mut main_handle));

    let trap = Trap::arm("skiplist::insert::upper::pre_link_cas");
    let inserter = {
        let set = Arc::clone(&set);
        thread::spawn(move || {
            let mut handle = set.register();
            // Forced height 2: the node must have an upper level to link.
            assert!(
                set.insert_with_height(10, 2, &mut handle),
                "level-0 linking (the linearization point) must succeed"
            );
        })
    };

    // Window open: the inserter has validated `succs[0] == node` for level 1
    // and sits right before its pred-link CAS.
    trap.wait_for_parked();

    // The victim is the unique key-10 node: last in level-0 order (after 5),
    // currently linked at level 0 only.
    let level0_before = set.level_addrs(0);
    assert_eq!(
        level0_before.len(),
        2,
        "keys 5 and 10 are linked at level 0"
    );
    let victim = *level0_before.last().unwrap();

    // A complete remove slips through the window: marks every level, sweeps
    // the victim out of the level-0 chain, and retires it.
    assert!(
        set.remove(&10, &mut main_handle),
        "the remover owns the level-0 logical deletion"
    );
    assert!(
        !set.level_addrs(0).contains(&victim),
        "after remove the victim is physically unlinked from level 0"
    );

    // Close the window: the inserter resumes with its stale validation.
    trap.release();
    inserter.join().unwrap();

    let level1_after = set.level_addrs(1);
    (victim, level1_after)
}

/// The invariant the race breaks: once `remove` has retired the victim, no
/// level may ever link it again — a reader traversing the upper level could
/// otherwise validate a protection for (and dereference) freed memory.
fn assert_victim_not_relinked<S: Smr>(scheme: Arc<S>, scheme_name: &str) {
    let _serial = schedule_lock();
    let (victim, level1) = force_skiplist_relink_schedule(scheme);
    assert!(
        !level1.contains(&victim),
        "{scheme_name}: retired victim {victim:#x} was re-linked at level 1 \
         by a stale insert CAS (upper-level re-link race): level 1 = {level1:x?}"
    );
}

#[test]
fn skiplist_remove_between_validate_and_cas_is_harmless_under_hp() {
    assert_victim_not_relinked(hazard::Hazard::new(deferred_config()), "hp");
}

#[test]
fn skiplist_remove_between_validate_and_cas_is_harmless_under_cadence() {
    assert_victim_not_relinked(cadence::Cadence::new(deferred_config()), "cadence");
}

#[test]
fn skiplist_remove_between_validate_and_cas_is_harmless_under_he() {
    assert_victim_not_relinked(he::He::new(deferred_config()), "he");
}

#[test]
fn skiplist_remove_between_validate_and_cas_is_harmless_under_qsense() {
    assert_victim_not_relinked(qsense::QSense::new(deferred_config()), "qsense");
}

// ---------------------------------------------------------------------------
// Audit: the analogous validate-then-CAS windows in the linked list. These are
// closed *without* versioned links because the insert CAS targets the very
// link the search validated (see the in-code note at the pause point in
// `list.rs`); the schedules below prove the stale CAS fails and the insert
// recovers by retrying.
// ---------------------------------------------------------------------------

/// Parks an inserter of key 10 (between 5 and 15) right before its link CAS,
/// completes `remove(&removed_key)` on the main thread, then releases the
/// inserter. `Trap::arrivals() >= 2` proves the stale CAS failed and the
/// insert went around its retry loop — the window closed the safe way.
fn force_list_schedule(removed_key: u64) {
    let _serial = schedule_lock();
    let set = Arc::new(HarrisMichaelList::<u64, _>::new(hazard::Hazard::new(
        deferred_config(),
    )));
    let mut main_handle = set.register();
    assert!(set.insert(5, &mut main_handle));
    assert!(set.insert(15, &mut main_handle));

    let trap = Trap::arm("list::insert::pre_link_cas");
    let inserter = {
        let set = Arc::clone(&set);
        thread::spawn(move || {
            let mut handle = set.register();
            assert!(set.insert(10, &mut handle), "insert must eventually win");
        })
    };
    trap.wait_for_parked();
    // The window: the inserter holds a validated (prev = 5, curr = 15)
    // position; a complete remove (mark + unlink + retire) slips through it.
    assert!(set.remove(&removed_key, &mut main_handle));
    trap.release();
    inserter.join().unwrap();

    assert!(
        trap.arrivals() >= 2,
        "the stale CAS must fail and retry (arrivals = {})",
        trap.arrivals()
    );
    assert!(set.contains(&10, &mut main_handle));
    assert!(!set.contains(&removed_key, &mut main_handle));
    let survivors = [5_u64, 15]
        .iter()
        .filter(|k| **k != removed_key)
        .filter(|k| set.contains(k, &mut main_handle))
        .count();
    assert_eq!(survivors, 1, "the untouched neighbour must survive");
}

#[test]
fn list_insert_survives_successor_removed_in_the_window() {
    // Removing `curr` (15) swings `prev.next` to its successor: the stale CAS
    // expecting 15 fails on pointer inequality.
    force_list_schedule(15);
}

#[test]
fn list_insert_survives_predecessor_removed_in_the_window() {
    // Removing `prev` (5) marks its outgoing pointer: the stale CAS fails on
    // the mark bit even though the pointer half still reads `curr` — the
    // reason the mark lives in the *outgoing* link.
    force_list_schedule(5);
}

// ---------------------------------------------------------------------------
// Audit: the analogous windows in the external BST. Closed without versions
// because removal dirties (flags/tags) the exact edge word the insert CAS
// expects clean (see the in-code note at the pause point in `bst.rs`).
// ---------------------------------------------------------------------------

/// Builds {10, 30} (so inserting 20 targets the edge internal(30).left →
/// leaf(10) with sibling leaf(30)), parks the inserter of 20 right before its
/// edge CAS, completes `remove(&removed_key)`, then releases.
fn force_bst_schedule(removed_key: u64) {
    let _serial = schedule_lock();
    let set = Arc::new(LockFreeBst::<u64, _>::new(hazard::Hazard::new(
        deferred_config(),
    )));
    let mut main_handle = set.register();
    assert!(set.insert(10, &mut main_handle));
    assert!(set.insert(30, &mut main_handle));

    let trap = Trap::arm("bst::insert::pre_link_cas");
    let inserter = {
        let set = Arc::clone(&set);
        thread::spawn(move || {
            let mut handle = set.register();
            assert!(set.insert(20, &mut handle), "insert must eventually win");
        })
    };
    trap.wait_for_parked();
    // The window: removing 10 flags the inserter's target edge (injection);
    // removing 30 tags that edge as the survivor and splices the inserter's
    // validated *parent* out of the tree entirely (the parent is retired).
    assert!(set.remove(&removed_key, &mut main_handle));
    trap.release();
    inserter.join().unwrap();

    assert!(
        trap.arrivals() >= 2,
        "the stale edge CAS must fail and retry (arrivals = {})",
        trap.arrivals()
    );
    assert!(set.contains(&20, &mut main_handle));
    assert!(!set.contains(&removed_key, &mut main_handle));
    let untouched = if removed_key == 10 { 30 } else { 10 };
    assert!(set.contains(&untouched, &mut main_handle));
}

#[test]
fn bst_insert_survives_target_leaf_removed_in_the_window() {
    force_bst_schedule(10);
}

#[test]
fn bst_insert_survives_parent_spliced_out_in_the_window() {
    force_bst_schedule(30);
}
