//! Registration past `max_threads` must fail descriptively, not corrupt.
//!
//! Every registry-backed scheme seats a handle per registry slot; the
//! `max_threads + 1`-th registration used to die on a scheme-specific
//! `expect`. This suite pins the PR 10 contract for each facade scheme:
//!
//! * `try_register` returns a [`CapacityExhausted`] error naming the scheme
//!   and the configured capacity, with remediation in the message;
//! * `register` (the panicking convenience wrapper) carries that same message;
//! * dropping a handle reopens its slot — exhaustion is a state, not a wound;
//! * a [`LeasePool`] is the sanctioned way past the limit: `N` pooled handles
//!   serve more tasks than the registry has slots, and its checkout applies
//!   the wait-or-fail policy instead of panicking.
//!
//! The registry-less schemes (`Leaky`, `RefCount`) share stat stripes
//! round-robin and must therefore never report exhaustion.

use qsense_repro::smr::{
    Cadence, Ebr, Hazard, He, Leaky, LeasePolicy, LeasePool, QSense, Qsbr, RefCount, Smr, SmrConfig,
};
use std::sync::Arc;

/// Two registry slots and no background registrations (rooster threads would
/// claim slots of their own).
fn tiny_config() -> SmrConfig {
    SmrConfig::default()
        .with_max_threads(2)
        .with_rooster_threads(0)
}

/// Fills the registry, asserts the overflow error's shape, then frees one
/// slot and asserts registration works again.
fn assert_capacity_exhausted<S: Smr>(scheme: Arc<S>, name: &str) {
    let first = scheme.try_register().expect("slot 1 of 2");
    let second = scheme.try_register().expect("slot 2 of 2");
    let err = scheme
        .try_register()
        .err()
        .unwrap_or_else(|| panic!("{name}: the 3rd registration must be refused"));
    assert_eq!(err.scheme, name, "error names the scheme");
    assert_eq!(err.capacity, 2, "error names the configured capacity");
    let message = err.to_string();
    assert!(
        message.contains(name) && message.contains("all 2 registry slots"),
        "{name}: descriptive message, got: {message}"
    );
    assert!(
        message.contains("max_threads") && message.contains("LeasePool"),
        "{name}: message suggests remediation, got: {message}"
    );
    // Exhaustion is transient: releasing any slot reopens registration.
    drop(second);
    let reopened = scheme.try_register();
    assert!(reopened.is_ok(), "{name}: a dropped handle frees its slot");
    drop(reopened);
    drop(first);
}

#[test]
fn every_registry_backed_scheme_reports_capacity_exhaustion() {
    assert_capacity_exhausted(Hazard::new(tiny_config()), "hp");
    assert_capacity_exhausted(Cadence::new(tiny_config()), "cadence");
    assert_capacity_exhausted(QSense::new(tiny_config()), "qsense");
    assert_capacity_exhausted(Qsbr::new(tiny_config()), "qsbr");
    assert_capacity_exhausted(Ebr::new(tiny_config()), "ebr");
    assert_capacity_exhausted(He::new(tiny_config()), "he");
}

#[test]
fn registry_less_schemes_never_exhaust() {
    let leaky = Leaky::new(tiny_config());
    let rc = RefCount::new(tiny_config());
    let mut handles = Vec::new();
    for _ in 0..8 {
        handles.push(leaky.try_register().expect("leaky shares stripes"));
    }
    let mut rc_handles = Vec::new();
    for _ in 0..8 {
        rc_handles.push(rc.try_register().expect("refcount shares stripes"));
    }
}

#[test]
fn register_panics_with_the_descriptive_message() {
    let scheme = Hazard::new(tiny_config());
    let _a = scheme.register();
    let _b = scheme.register();
    let scheme2 = Arc::clone(&scheme);
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let _ = scheme2.register();
    }))
    .expect_err("register past capacity panics");
    let message = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        message.contains("hp") && message.contains("all 2 registry slots"),
        "panic carries the CapacityExhausted message, got: {message}"
    );
}

#[test]
fn lease_pool_is_the_way_past_the_slot_limit() {
    // The pool itself must fit...
    let scheme = Hazard::new(tiny_config());
    let err = match LeasePool::for_scheme(&scheme, 3, LeasePolicy::Wait) {
        Ok(_) => panic!("3 pooled handles cannot fit 2 slots"),
        Err(err) => err,
    };
    assert_eq!(err.capacity, 2);
    // ...and once it does, checkout applies wait-or-fail instead of dying:
    // more concurrent borrowers than the registry has slots, no panic.
    let pool = LeasePool::for_scheme(&scheme, 2, LeasePolicy::Fail).expect("2 handles fit");
    let a = pool.checkout().expect("lease 1");
    let b = pool.checkout().expect("lease 2");
    let exhausted = pool.checkout().expect_err("fail policy sheds the 3rd task");
    assert_eq!(exhausted.slots, 2);
    assert!(exhausted.to_string().contains("checked out"));
    drop(a);
    assert!(pool.checkout().is_ok(), "a checkin reopens the pool");
    drop(b);
}
