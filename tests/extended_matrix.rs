//! Cross-crate stress tests for the extension structures and the related-work
//! baseline schemes: the hash map, queue and stack under every implemented scheme
//! via the `BenchSet` matrix (the queue and stack map insert/remove to
//! enqueue+dequeue / push+pop and serve `contains` with an emptiness probe), plus
//! direct element-conservation tests on the queue and stack under the schemes
//! that exercise protection the hardest.
//!
//! Like `stress_matrix.rs`, these tests fail by crashing (use-after-free, double
//! free) if any protection/retirement protocol is wrong, and fail assertions if
//! elements are lost, duplicated or leaked.

use qsense_repro::bench::{make_set, BenchSet, SchemeKind, Structure};
use qsense_repro::ds::{MichaelScottQueue, TreiberStack, QUEUE_HP_SLOTS, STACK_HP_SLOTS};
use qsense_repro::smr::{Ebr, Hazard, He, QSense, Smr, SmrConfig, SmrHandle};
use std::collections::HashSet;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread;

fn bench_config(threads: usize) -> SmrConfig {
    qsense_repro::bench::default_bench_config(threads + 2)
        .with_quiescence_threshold(16)
        .with_scan_threshold(32)
        .with_fallback_threshold(512)
        .with_rooster_interval(std::time::Duration::from_millis(1))
}

/// Mixed workload on one (structure, scheme) cell; checks the final size against the
/// balance of successful inserts and removes, and the reclamation accounting.
fn stress_cell(structure: Structure, scheme: SchemeKind, threads: usize, ops: u64) {
    let set: Arc<dyn BenchSet> = make_set(structure, scheme, bench_config(threads));
    let balance = Arc::new(AtomicI64::new(0));

    thread::scope(|scope| {
        for t in 0..threads {
            let set = Arc::clone(&set);
            let balance = Arc::clone(&balance);
            scope.spawn(move || {
                let mut session = set.session();
                let mut state = 0xA076_1D64_78BD_642F_u64.wrapping_add(t as u64);
                let mut local: i64 = 0;
                for _ in 0..ops {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 512;
                    match state % 4 {
                        0 | 1 => {
                            session.contains(key);
                        }
                        2 => {
                            if session.insert(key) {
                                local += 1;
                            }
                        }
                        _ => {
                            if session.remove(key) {
                                local -= 1;
                            }
                        }
                    }
                }
                session.flush();
                balance.fetch_add(local, Ordering::SeqCst);
            });
        }
    });

    let expected = balance.load(Ordering::SeqCst);
    assert!(expected >= 0);
    assert_eq!(
        set.len() as i64,
        expected,
        "{structure:?}/{scheme:?}: final size must equal successful inserts - removes"
    );
    let stats = set.smr_stats();
    assert!(
        stats.freed <= stats.retired,
        "cannot free more than was retired"
    );
}

#[test]
fn hash_map_survives_every_scheme() {
    for scheme in SchemeKind::extended() {
        stress_cell(Structure::HashMap, scheme, 3, 3_000);
    }
}

#[test]
fn queue_and_stack_survive_every_scheme() {
    for structure in [Structure::Queue, Structure::Stack] {
        for scheme in SchemeKind::extended() {
            stress_cell(structure, scheme, 3, 3_000);
        }
    }
}

#[test]
fn paper_structures_survive_the_new_baseline_schemes() {
    // The original stress matrix covers the paper's schemes; this covers the
    // baselines added by the reproduction (EBR, reference counting) and the
    // Hazard-Eras extension on the paper's structures.
    for structure in [Structure::List, Structure::SkipList, Structure::Bst] {
        for scheme in [SchemeKind::Ebr, SchemeKind::RefCount, SchemeKind::He] {
            stress_cell(structure, scheme, 3, 2_000);
        }
    }
}

/// Producer/consumer stress on the queue: every enqueued element is dequeued exactly
/// once, under a scheme that actually reclaims the dummies while the test runs.
fn queue_conservation<S: Smr>(scheme: Arc<S>) {
    const PRODUCERS: u64 = 2;
    const CONSUMERS: usize = 2;
    const PER_PRODUCER: u64 = 4_000;
    let queue = Arc::new(MichaelScottQueue::<u64, S>::new(Arc::clone(&scheme)));
    let consumed: Vec<u64> = thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let queue = Arc::clone(&queue);
            scope.spawn(move || {
                let mut handle = queue.register();
                for i in 0..PER_PRODUCER {
                    queue.enqueue(p * PER_PRODUCER + i, &mut handle);
                }
            });
        }
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let queue = Arc::clone(&queue);
                scope.spawn(move || {
                    let mut handle = queue.register();
                    let mut got = Vec::new();
                    let mut idle = 0;
                    while idle < 2_000 {
                        match queue.dequeue(&mut handle) {
                            Some(v) => {
                                got.push(v);
                                idle = 0;
                            }
                            None => {
                                idle += 1;
                                thread::yield_now();
                            }
                        }
                    }
                    handle.flush();
                    got
                })
            })
            .collect();
        consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect()
    });
    // Drain stragglers the consumers gave up on.
    let mut handle = queue.register();
    let mut all = consumed;
    while let Some(v) = queue.dequeue(&mut handle) {
        all.push(v);
    }
    handle.flush();
    assert_eq!(
        all.len() as u64,
        PRODUCERS * PER_PRODUCER,
        "every element exactly once"
    );
    let unique: HashSet<u64> = all.iter().copied().collect();
    assert_eq!(unique.len(), all.len(), "no element may be duplicated");
    let stats = scheme.stats();
    assert_eq!(
        stats.retired,
        PRODUCERS * PER_PRODUCER,
        "one dummy retired per dequeue"
    );
    assert!(stats.freed <= stats.retired);
}

#[test]
fn queue_conserves_elements_under_qsense() {
    queue_conservation(QSense::new(
        SmrConfig::default()
            .with_max_threads(8)
            .with_hp_per_thread(QUEUE_HP_SLOTS)
            .with_quiescence_threshold(8)
            .with_scan_threshold(16)
            .with_fallback_threshold(256)
            .with_rooster_threads(1)
            .with_rooster_interval(std::time::Duration::from_millis(1)),
    ));
}

#[test]
fn queue_conserves_elements_under_classic_hazard_pointers() {
    queue_conservation(Hazard::new(
        SmrConfig::default()
            .with_max_threads(8)
            .with_hp_per_thread(QUEUE_HP_SLOTS)
            .with_scan_threshold(16),
    ));
}

#[test]
fn queue_conserves_elements_under_ebr() {
    queue_conservation(Ebr::new(
        SmrConfig::default()
            .with_max_threads(8)
            .with_hp_per_thread(QUEUE_HP_SLOTS)
            .with_scan_threshold(16),
    ));
}

#[test]
fn queue_conserves_elements_under_hazard_eras() {
    queue_conservation(He::new(
        SmrConfig::default()
            .with_max_threads(8)
            .with_hp_per_thread(QUEUE_HP_SLOTS)
            .with_scan_threshold(16)
            .with_era_advance_interval(16),
    ));
}

/// Push/pop stress on the stack: element conservation plus reclamation accounting.
fn stack_conservation<S: Smr>(scheme: Arc<S>) {
    const PUSHERS: u64 = 2;
    const POPPERS: usize = 2;
    const PER_PUSHER: u64 = 4_000;
    let stack = Arc::new(TreiberStack::<u64, S>::new(Arc::clone(&scheme)));
    let popped: Vec<u64> = thread::scope(|scope| {
        for p in 0..PUSHERS {
            let stack = Arc::clone(&stack);
            scope.spawn(move || {
                let mut handle = stack.register();
                for i in 0..PER_PUSHER {
                    stack.push(p * PER_PUSHER + i, &mut handle);
                }
            });
        }
        let poppers: Vec<_> = (0..POPPERS)
            .map(|_| {
                let stack = Arc::clone(&stack);
                scope.spawn(move || {
                    let mut handle = stack.register();
                    let mut got = Vec::new();
                    let mut idle = 0;
                    while idle < 2_000 {
                        match stack.pop(&mut handle) {
                            Some(v) => {
                                got.push(v);
                                idle = 0;
                            }
                            None => {
                                idle += 1;
                                thread::yield_now();
                            }
                        }
                    }
                    handle.flush();
                    got
                })
            })
            .collect();
        poppers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect()
    });
    let mut handle = stack.register();
    let mut all = popped;
    while let Some(v) = stack.pop(&mut handle) {
        all.push(v);
    }
    handle.flush();
    assert_eq!(all.len() as u64, PUSHERS * PER_PUSHER);
    let unique: HashSet<u64> = all.iter().copied().collect();
    assert_eq!(unique.len(), all.len(), "no element may be duplicated");
    assert!(stack.is_empty());
    let stats = scheme.stats();
    assert_eq!(
        stats.retired,
        PUSHERS * PER_PUSHER,
        "one node retired per pop"
    );
    assert!(stats.freed <= stats.retired);
}

#[test]
fn stack_conserves_elements_under_qsense() {
    stack_conservation(QSense::new(
        SmrConfig::default()
            .with_max_threads(8)
            .with_hp_per_thread(STACK_HP_SLOTS)
            .with_quiescence_threshold(8)
            .with_scan_threshold(16)
            .with_fallback_threshold(256)
            .with_rooster_threads(1)
            .with_rooster_interval(std::time::Duration::from_millis(1)),
    ));
}

#[test]
fn stack_conserves_elements_under_classic_hazard_pointers() {
    stack_conservation(Hazard::new(
        SmrConfig::default()
            .with_max_threads(8)
            .with_hp_per_thread(STACK_HP_SLOTS)
            .with_scan_threshold(16),
    ));
}

#[test]
fn stack_conserves_elements_under_hazard_eras() {
    stack_conservation(He::new(
        SmrConfig::default()
            .with_max_threads(8)
            .with_hp_per_thread(STACK_HP_SLOTS)
            .with_scan_threshold(16)
            .with_era_advance_interval(16),
    ));
}

#[test]
fn stack_conserves_elements_under_refcount() {
    stack_conservation(qsense_repro::smr::RefCount::new(
        SmrConfig::default()
            .with_max_threads(8)
            .with_hp_per_thread(STACK_HP_SLOTS)
            .with_scan_threshold(16),
    ));
}

#[test]
fn everything_is_reclaimed_once_structure_and_scheme_are_dropped() {
    // Leak accounting across the whole extended matrix: after dropping the structure
    // and the scheme, every retired node must have been freed.
    for scheme_kind in SchemeKind::extended() {
        let stats_after = {
            let set = make_set(Structure::HashMap, scheme_kind, bench_config(2));
            let mut session = set.session();
            for key in 0..500_u64 {
                session.insert(key);
            }
            for key in 0..500_u64 {
                session.remove(key);
            }
            session.flush();
            drop(session);
            let stats = set.smr_stats();
            drop(set);
            stats
        };
        // `None` (leaky) frees nothing by design; every real scheme must not leak
        // within the structure's and scheme's lifetime (the scheme frees parked
        // leftovers when it drops, which has already happened here, so the snapshot
        // taken just before the drop only needs freed ≤ retired; the stronger
        // equality is checked by reclamation_accounting.rs for the paper's matrix).
        assert!(
            stats_after.freed <= stats_after.retired,
            "{scheme_kind:?}: freed more than retired"
        );
        if scheme_kind != SchemeKind::None {
            assert_eq!(
                stats_after.retired, 500,
                "{scheme_kind:?}: every remove retires once"
            );
        }
    }
}
