//! Robustness and liveness bounds across schemes, at integration scale.
//!
//! These tests pin down the behavioural differences that the paper's Figure 5
//! (bottom row) plots and that the correctness section proves:
//!
//! * QSBR is blocked by a registered thread that stops participating; EBR is only
//!   blocked by a thread stalled *inside* an operation; Cadence and QSense keep
//!   reclaiming either way.
//! * Under delays, QSense's unreclaimed-node count respects (a generous version of)
//!   the `2·N·C` bound of Property 4, while QSBR's grows with the number of
//!   retirements performed during the delay.
//! * With the eviction extension enabled, QSense recovers the fast path even when a
//!   thread never comes back — end to end, with the real clock and real structures.

use qsense_repro::bench::{
    default_fault_config, make_set, run_experiment, run_fault_for, run_stall_churn, DelaySchedule,
    Experiment, FaultKind, FaultPlan, OpMix, SchemeKind, StallChurnSpec, Structure, WorkloadSpec,
    PAYLOAD_BYTES,
};
use qsense_repro::ds::HarrisMichaelList;
use qsense_repro::smr::{
    Cadence, Ebr, EraAdvancePolicy, He, Path, QSense, Qsbr, Smr, SmrConfig, SmrHandle,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Drives `ops` insert/remove pairs through a list whose scheme has one extra
/// registered-but-idle handle, and returns the scheme's unreclaimed-node count at
/// the end. Every remove retires a node, so a scheme that cannot make progress ends
/// up with roughly `ops` nodes in limbo.
fn limbo_with_idle_thread<S: Smr>(scheme: Arc<S>, ops: u64) -> u64 {
    let list = Arc::new(HarrisMichaelList::<u64, S>::new(Arc::clone(&scheme)));
    let _idle = list.register(); // registered, never used again until the end
    let mut worker = list.register();
    for i in 0..ops {
        let key = i % 64;
        list.insert(key, &mut worker);
        list.remove(&key, &mut worker);
    }
    worker.flush();
    // The deferred-reclamation schemes may only free nodes older than T + ε; give
    // the freshly retired tail time to age, then scan once more. (This does not help
    // QSBR: no amount of waiting substitutes for the idle thread's quiescence.)
    thread::sleep(Duration::from_millis(10));
    worker.flush();
    scheme.stats().in_limbo()
}

#[test]
fn an_idle_registered_thread_blocks_qsbr_but_not_ebr_cadence_or_qsense() {
    const OPS: u64 = 4_000;
    let base = || {
        SmrConfig::for_list()
            .with_max_threads(4)
            .with_quiescence_threshold(8)
            .with_scan_threshold(16)
            .with_fallback_threshold(128)
            .with_rooster_threads(1)
            .with_rooster_interval(Duration::from_millis(1))
    };

    let qsbr_limbo = limbo_with_idle_thread(Qsbr::new(base()), OPS);
    let ebr_limbo = limbo_with_idle_thread(Ebr::new(base()), OPS);
    let he_limbo = limbo_with_idle_thread(He::new(base()), OPS);
    let cadence_limbo = limbo_with_idle_thread(Cadence::new(base()), OPS);
    let qsense_limbo = limbo_with_idle_thread(QSense::new(base()), OPS);

    // QSBR: the idle thread never quiesces, so nearly everything stays in limbo.
    assert!(
        qsbr_limbo > OPS / 2,
        "QSBR should be blocked by the idle thread (limbo = {qsbr_limbo})"
    );
    // EBR: the idle thread is not pinned, so it does not block reclamation at all.
    assert!(
        ebr_limbo < OPS / 10,
        "EBR must not be blocked by an idle (unpinned) thread (limbo = {ebr_limbo})"
    );
    // HE: the idle thread's era reservation is inactive, so it blocks nothing.
    assert!(
        he_limbo < OPS / 10,
        "HE must not be blocked by an idle (inactive-reservation) thread (limbo = {he_limbo})"
    );
    // Cadence / QSense: robust by construction; once the tail has aged past T + ε,
    // nothing the idle thread does (or fails to do) can keep nodes in limbo.
    assert!(
        cadence_limbo < OPS / 4,
        "Cadence must keep reclaiming despite the idle thread (limbo = {cadence_limbo})"
    );
    assert!(
        qsense_limbo < OPS / 4,
        "QSense must keep reclaiming despite the idle thread (limbo = {qsense_limbo})"
    );
}

#[test]
fn a_thread_stalled_inside_an_operation_blocks_ebr_but_not_qsense() {
    const OPS: u64 = 3_000;
    let base = || {
        SmrConfig::for_list()
            .with_max_threads(4)
            .with_quiescence_threshold(8)
            .with_scan_threshold(16)
            .with_fallback_threshold(128)
            .with_rooster_threads(1)
            .with_rooster_interval(Duration::from_millis(1))
    };

    // EBR: a handle that begins an operation and never ends it pins the epoch.
    let ebr = Ebr::new(base());
    let ebr_limbo = {
        let list = Arc::new(HarrisMichaelList::<u64, Ebr>::new(Arc::clone(&ebr)));
        let mut stuck = list.register();
        stuck.begin_op(); // simulates a thread descheduled mid-traversal
        let mut worker = list.register();
        for i in 0..OPS {
            let key = i % 64;
            list.insert(key, &mut worker);
            list.remove(&key, &mut worker);
        }
        worker.flush();
        let limbo = ebr.stats().in_limbo();
        stuck.end_op();
        limbo
    };
    assert!(
        ebr_limbo > OPS / 2,
        "EBR must be blocked by a thread stalled inside an operation (limbo = {ebr_limbo})"
    );

    // QSense: the same stall only delays reclamation until nodes age past T + ε and
    // the fallback path takes over.
    let qsense = QSense::new(base());
    let qsense_limbo = {
        let list = Arc::new(HarrisMichaelList::<u64, QSense>::new(Arc::clone(&qsense)));
        let mut stuck = list.register();
        stuck.begin_op();
        let mut worker = list.register();
        for i in 0..OPS {
            let key = i % 64;
            list.insert(key, &mut worker);
            list.remove(&key, &mut worker);
            if i % 256 == 0 {
                // Give retired nodes a chance to age past the (1 ms) rooster interval.
                thread::sleep(Duration::from_millis(2));
            }
        }
        worker.flush();
        qsense.stats().in_limbo()
    };
    assert!(
        qsense_limbo < OPS / 2,
        "QSense must keep reclaiming despite the mid-operation stall (limbo = {qsense_limbo})"
    );
}

/// The acceptance scenario for the Hazard-Eras extension: a reader stalled
/// *mid-operation* — the case that freezes the epoch schemes outright — bounds
/// HE's garbage by eras. The stalled reservation covers only the eras up to the
/// stall, so every node allocated afterwards (whose birth era is newer) keeps
/// being freed; the pinned residue is limited to the nodes that existed when
/// the reader stalled. The matching bounded-garbage assertion must *fail* for
/// QSBR: the same stalled participant never quiesces again, so QSBR's limbo
/// grows with the number of retirements performed during the stall — the
/// unbounded behaviour the paper's Figure 5 (bottom row) plots.
#[test]
fn a_stalled_reader_bounds_he_garbage_by_eras_but_not_qsbr() {
    const OPS: u64 = 4_000;
    let base = || {
        SmrConfig::for_list()
            .with_max_threads(4)
            .with_quiescence_threshold(8)
            .with_scan_threshold(16)
            .with_era_advance_interval(16)
    };

    // HE: stall a reader inside an operation (announced reservation), then churn.
    let he = He::new(base());
    let he_limbo = {
        let list = Arc::new(HarrisMichaelList::<u64, He>::new(Arc::clone(&he)));
        let mut stuck = list.register();
        stuck.begin_op(); // announces [e, e] and never ends the operation
        let mut worker = list.register();
        for i in 0..OPS {
            let key = i % 64;
            list.insert(key, &mut worker);
            list.remove(&key, &mut worker);
        }
        worker.flush();
        let limbo = he.stats().in_limbo();
        stuck.end_op();
        limbo
    };
    // Bounded: only nodes born at or before the stall era stay pinned — the
    // first era's worth of allocations plus scan-timing slack, nowhere near
    // the OPS retirements performed during the stall.
    assert!(
        he_limbo < OPS / 10,
        "HE must bound the garbage a mid-operation stall pins by eras (limbo = {he_limbo})"
    );

    // QSBR: the matching scenario (a participant that stops going quiescent).
    // The bounded-garbage assertion that HE satisfies must fail here.
    let qsbr = Qsbr::new(base());
    let qsbr_limbo = {
        let list = Arc::new(HarrisMichaelList::<u64, Qsbr>::new(Arc::clone(&qsbr)));
        let mut stuck = list.register();
        stuck.begin_op(); // one op boundary, then silence: never quiesces again
        let mut worker = list.register();
        for i in 0..OPS {
            let key = i % 64;
            list.insert(key, &mut worker);
            list.remove(&key, &mut worker);
        }
        worker.flush();
        let limbo = qsbr.stats().in_limbo();
        stuck.end_op();
        limbo
    };
    assert!(
        qsbr_limbo >= OPS / 10,
        "the HE garbage bound must NOT hold for QSBR (limbo = {qsbr_limbo})"
    );
    assert!(
        qsbr_limbo > OPS / 2,
        "QSBR's limbo must grow with the retirements performed during the stall          (limbo = {qsbr_limbo})"
    );
    // And the asymmetry itself: eras keep HE's pinned residue orders of
    // magnitude below QSBR's unbounded growth in the same scenario.
    assert!(
        he_limbo < qsbr_limbo / 4,
        "HE ({he_limbo}) must stay far below QSBR ({qsbr_limbo}) under the same stall"
    );
}

/// The `stall-churn` scenario (one reader repeatedly stalls mid-operation
/// while a writer burst-allocates and handle churn runs) is where the
/// era-advance policy *matters*: every stall pins the allocations that share
/// its announced era, i.e. up to one era-advance interval's worth of the
/// burst. The static policy pins a constant per stall; the adaptive policy
/// reacts to the limbo the first stalls pin and keeps the cadence fast for as
/// long as pressure persists — so with the same interval range its limbo
/// trajectory sits at or below the static one at **every** sampled point,
/// its peak strictly below, and both sit orders of magnitude below QSBR,
/// which the same stall blocks outright.
///
/// The scenario is single-threaded and the two HE runs execute the identical
/// operation sequence, so the sample-by-sample comparison is deterministic.
#[test]
fn stall_churn_adaptive_era_policy_tightens_the_static_limbo_bound() {
    let spec = StallChurnSpec {
        episodes: 24,
        burst: 256,
        churn_every: 8,
    };
    let base = || {
        SmrConfig::for_list()
            .with_max_threads(4)
            .with_scan_threshold(128)
            .with_quiescence_threshold(1_000_000)
            .with_rooster_threads(0)
    };
    // Same range: the static interval is the adaptive policy's idle ceiling,
    // so every difference below is the adaptation, not a smaller constant.
    let static_run = run_stall_churn(
        &He::new(base().with_era_policy(EraAdvancePolicy::Static(64))),
        &spec,
    );
    let adaptive_run = run_stall_churn(
        &He::new(base().with_era_policy(EraAdvancePolicy::Adaptive {
            min_interval: 8,
            max_interval: 64,
            limbo_low_water: 4,
        })),
        &spec,
    );
    let qsbr_run = run_stall_churn(&Qsbr::new(base()), &spec);

    assert_eq!(adaptive_run.total_retired, static_run.total_retired);
    assert_eq!(adaptive_run.limbo_samples.len(), spec.episodes);
    for (episode, (adaptive, fixed)) in adaptive_run
        .limbo_samples
        .iter()
        .zip(&static_run.limbo_samples)
        .enumerate()
    {
        assert!(
            adaptive <= fixed,
            "episode {episode}: adaptive limbo {adaptive} above static {fixed}          (adaptive {:?} vs static {:?})",
            adaptive_run.limbo_samples,
            static_run.limbo_samples
        );
    }
    assert!(
        adaptive_run.peak_limbo() < static_run.peak_limbo(),
        "adaptive peak {} must be strictly below static peak {}",
        adaptive_run.peak_limbo(),
        static_run.peak_limbo()
    );
    // QSBR cannot reclaim at all while the reader stalls: its limbo tracks
    // the total retirement count, far above either HE bound.
    assert_eq!(
        qsbr_run.peak_limbo(),
        qsbr_run.total_retired,
        "the stalled reader must block QSBR outright"
    );
    assert!(
        static_run.peak_limbo() < qsbr_run.peak_limbo() / 4,
        "static HE ({}) must stay far below QSBR ({})",
        static_run.peak_limbo(),
        qsbr_run.peak_limbo()
    );
    assert!(
        adaptive_run.peak_limbo() < qsbr_run.peak_limbo() / 8,
        "adaptive HE ({}) must stay farther below QSBR ({})",
        adaptive_run.peak_limbo(),
        qsbr_run.peak_limbo()
    );
    // Releasing the reader drains both HE runs completely.
    assert_eq!(static_run.end_limbo, 0);
    assert_eq!(adaptive_run.end_limbo, 0);
}

/// The CI robustness verdict: under an enforced byte budget, the robust
/// schemes (HP, Cadence, QSense, HE) keep `peak_limbo_bytes` within constant
/// headroom of the budget — *and* the escalation counters show the governor
/// actually pulled its levers — under both the stalled-reader and the
/// leaked-handle fault, while QSBR's peak grows with the total number of
/// retirements (pulling the same levers buys it nothing: no lever can
/// substitute for the stalled participant's quiescence).
///
/// The bound is `2 bursts per retiring handle + 4x budget`: enforcement only
/// engages *after* the estimate crosses the budget, and the age-gated schemes
/// cannot free nodes younger than T + ε — which is wall-clock time, so under
/// scheduler jitter two consecutive bursts can both still be young when the
/// second one peaks (and the leaked-handle fault has *two* handles retiring
/// per episode: the writer and the leaking handle itself). That many in-flight
/// bursts plus small enforcement headroom is the honest constant. QSBR's peak
/// — the whole run's retirements — sits a multiple above it under every fault.
#[test]
fn byte_budgets_bound_the_robust_schemes_but_not_qsbr_under_faults() {
    // Budget far below one episode's bytes, so every scheme (HP's natural
    // node-count ceiling included) must cross it and escalate.
    const BUDGET: usize = 8 * 1024;
    for fault in [FaultKind::StalledReader, FaultKind::LeakedHandle] {
        let plan = FaultPlan::new(fault);
        let retiring_handles = match fault {
            FaultKind::LeakedHandle => 2,
            _ => 1,
        };
        let bound = (2 * retiring_handles * plan.episode_bytes() + 4 * BUDGET) as u64;
        for scheme in [
            SchemeKind::Hp,
            SchemeKind::Cadence,
            SchemeKind::QSense,
            SchemeKind::He,
        ] {
            let result = run_fault_for(scheme, default_fault_config(Some(BUDGET)), &plan);
            let verdict = result.verdict.expect("budgeted runs carry a verdict");
            assert!(
                verdict.escalations() > 0,
                "{} under {}: crossing the budget must be answered by escalation ({verdict:?})",
                result.scheme,
                fault.name()
            );
            assert!(
                result.peak_limbo_bytes <= bound,
                "{} under {}: peak {} bytes must stay within the young-burst bound {bound}",
                result.scheme,
                fault.name(),
                result.peak_limbo_bytes
            );
            assert_eq!(
                result.end_limbo,
                0,
                "{} under {}: releasing the fault must drain the limbo",
                result.scheme,
                fault.name()
            );
            // QSense's escalation lever is the hybrid switch itself: the byte
            // budget must trip the Cadence fallback before the node-count C.
            if scheme == SchemeKind::QSense {
                assert!(
                    verdict.fallback_trips >= 1,
                    "QSense under {}: the budget breach must trip the fallback early ({verdict:?})",
                    fault.name()
                );
            }
        }

        let qsbr = run_fault_for(SchemeKind::Qsbr, default_fault_config(Some(BUDGET)), &plan);
        let total_bytes = qsbr.total_retired * PAYLOAD_BYTES as u64;
        assert!(
            qsbr.peak_limbo_bytes > bound,
            "QSBR under {}: the robust schemes' bound {bound} must NOT hold (peak {})",
            fault.name(),
            qsbr.peak_limbo_bytes
        );
        assert!(
            qsbr.peak_limbo_bytes >= total_bytes / 2,
            "QSBR under {}: the peak must track the total retirement volume          ({} of {total_bytes} bytes)",
            fault.name(),
            qsbr.peak_limbo_bytes
        );
    }

    // EBR's expected failure: the leaked handle is dropped *mid-operation*, so
    // until the drop (half the run) it pins the epoch and limbo grows with
    // every retirement — budget escalation fires but cannot help, exactly like
    // QSBR under the stall. This is the epoch schemes' documented non-robust
    // verdict, asserted rather than skipped.
    let plan = FaultPlan::new(FaultKind::LeakedHandle);
    let bound = (4 * plan.episode_bytes() + 4 * BUDGET) as u64;
    let ebr = run_fault_for(SchemeKind::Ebr, default_fault_config(Some(BUDGET)), &plan);
    assert!(
        ebr.peak_limbo_bytes > bound,
        "EBR under leaked-handle: the robust bound {bound} must NOT hold (peak {})",
        ebr.peak_limbo_bytes
    );
    assert_eq!(
        ebr.end_limbo, 0,
        "EBR under leaked-handle: once the leak is adopted, everything drains"
    );
}

/// Leaked-handle coverage across the full scheme matrix: a handle dropped
/// mid-operation without a flush must not strand its parked bytes anywhere —
/// after the cleanup adopter pass, every reclaiming scheme ends with zero
/// nodes *and* zero bytes in limbo, and the governor's byte estimate agrees
/// (the unconditional parked-bytes accounting is exactly what makes a leak
/// visible instead of silently undercounted). The leaky baseline is the
/// control: it never frees, so its end limbo is the whole run.
#[test]
fn a_leaked_handle_strands_no_bytes_in_any_scheme() {
    let plan = FaultPlan::new(FaultKind::LeakedHandle);
    for scheme in SchemeKind::extended() {
        let result = run_fault_for(scheme, default_fault_config(None), &plan);
        if scheme == SchemeKind::None {
            assert_eq!(
                result.end_limbo, result.total_retired,
                "the leaky baseline frees nothing until scheme drop"
            );
            continue;
        }
        assert_eq!(
            result.end_limbo, 0,
            "{}: leaked-handle cleanup must drain every node",
            result.scheme
        );
        assert_eq!(
            result.end_limbo_bytes, 0,
            "{}: leaked-handle cleanup must drain every byte",
            result.scheme
        );
        let verdict = result.verdict.expect("every scheme reports a verdict");
        assert_eq!(
            verdict.current_bytes, 0,
            "{}: the governor's estimate must agree that nothing is stranded ({verdict:?})",
            result.scheme
        );
    }
}

#[test]
fn qsense_limbo_respects_the_2nc_bound_under_periodic_delays() {
    // Property 4: with a legal C, at most 2·N·C retired nodes exist at any time.
    // Run the paper's delay scenario (scaled down) through the workload runner and
    // check every time-series sample against the bound.
    let threads = 4;
    let c = 2_048;
    let config = qsense_repro::bench::default_bench_config(threads + 2)
        .with_fallback_threshold(c)
        .with_quiescence_threshold(16)
        .with_scan_threshold(64)
        .with_rooster_interval(Duration::from_millis(2));
    let set = make_set(Structure::List, SchemeKind::QSense, config);
    let run_secs = 2.0;
    let result = run_experiment(&Experiment {
        set,
        spec: WorkloadSpec::new(2_000, OpMix::updates_50()),
        threads,
        duration: Duration::from_secs_f64(run_secs),
        delay: Some(DelaySchedule::paper_scaled(run_secs / 100.0)),
        sample_interval: Some(Duration::from_millis(100)),
        limbo_cap: None,
    });
    let bound = 2 * (threads as u64 + 2) * c as u64;
    assert!(!result.samples.is_empty(), "the run must produce samples");
    for sample in &result.samples {
        assert!(
            sample.in_limbo <= bound,
            "sample at {:?} has {} unreclaimed nodes, above the 2NC bound {}",
            sample.at,
            sample.in_limbo,
            bound
        );
    }
    assert!(result.total_ops > 0);
}

#[test]
fn qsense_with_eviction_recovers_the_fast_path_after_a_permanent_failure() {
    // End-to-end version of the extension test in the qsense crate: real clock, real
    // list, a worker thread, and a participant that registers and then never returns.
    // `C` is sized so that the initial blockage (before eviction kicks in) crosses
    // it quickly, but the post-recovery steady state — where frees are age-gated
    // because the crashed thread stays evicted — stays well below it; otherwise the
    // system would legitimately oscillate between the paths.
    let scheme = QSense::new(
        SmrConfig::for_list()
            .with_max_threads(4)
            .with_quiescence_threshold(8)
            .with_scan_threshold(32)
            .with_fallback_threshold(16_384)
            .with_rooster_threads(1)
            .with_rooster_interval(Duration::from_millis(1))
            .with_eviction_timeout(Some(Duration::from_millis(50))),
    );
    let list = Arc::new(HarrisMichaelList::<u64, QSense>::new(Arc::clone(&scheme)));
    let crashed = list.register(); // never participates again
    let stop = Arc::new(AtomicBool::new(false));

    thread::scope(|scope| {
        let list_ref = Arc::clone(&list);
        let stop_ref = Arc::clone(&stop);
        scope.spawn(move || {
            let mut handle = list_ref.register();
            let mut i = 0u64;
            while !stop_ref.load(Ordering::Relaxed) {
                let key = i % 256;
                list_ref.insert(key, &mut handle);
                list_ref.remove(&key, &mut handle);
                i += 1;
            }
            handle.flush();
        });
        // Let the worker run long enough to trigger fallback, eviction and recovery.
        thread::sleep(Duration::from_millis(600));
        stop.store(true, Ordering::Relaxed);
    });

    let stats = scheme.stats();
    assert!(
        stats.fallback_switches >= 1,
        "the crashed thread must have pushed the system into fallback at least once"
    );
    assert!(
        stats.fast_path_switches >= 1,
        "eviction must have let the system recover the fast path"
    );
    assert_eq!(
        scheme.current_path(),
        Path::Fast,
        "the run must end on the fast path"
    );
    assert_eq!(
        scheme.evicted_count(),
        1,
        "the crashed thread stays evicted"
    );
    assert!(stats.freed <= stats.retired);
    drop(crashed);
}
