//! Property-based tests (proptest): the lock-free structures must behave exactly
//! like a reference `BTreeSet` on arbitrary operation sequences, under every
//! reclamation scheme; plus properties of the core reclamation invariants.

use proptest::prelude::*;
use qsense_repro::bench::{make_set, SchemeKind, Structure};
use qsense_repro::smr::SmrConfig;
use std::collections::BTreeSet;

/// One step of a generated workload.
#[derive(Clone, Debug)]
enum Step {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn step_strategy(key_range: u64) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..key_range).prop_map(Step::Insert),
        (0..key_range).prop_map(Step::Remove),
        (0..key_range).prop_map(Step::Contains),
    ]
}

fn small_config() -> SmrConfig {
    qsense_repro::bench::default_bench_config(4)
        .with_quiescence_threshold(4)
        .with_scan_threshold(8)
        .with_fallback_threshold(64)
        .with_rooster_interval(std::time::Duration::from_millis(1))
}

fn check_against_reference(structure: Structure, scheme: SchemeKind, steps: &[Step]) {
    let set = make_set(structure, scheme, small_config());
    let mut session = set.session();
    let mut reference = BTreeSet::new();
    for step in steps {
        match *step {
            Step::Insert(k) => assert_eq!(
                session.insert(k),
                reference.insert(k),
                "{structure:?}/{scheme:?} insert({k}) diverged"
            ),
            Step::Remove(k) => assert_eq!(
                session.remove(k),
                reference.remove(&k),
                "{structure:?}/{scheme:?} remove({k}) diverged"
            ),
            Step::Contains(k) => assert_eq!(
                session.contains(k),
                reference.contains(&k),
                "{structure:?}/{scheme:?} contains({k}) diverged"
            ),
        }
    }
    drop(session);
    assert_eq!(
        set.len(),
        reference.len(),
        "{structure:?}/{scheme:?} final size"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        ..ProptestConfig::default()
    })]

    #[test]
    fn list_matches_btreeset_under_qsense(steps in prop::collection::vec(step_strategy(64), 1..400)) {
        check_against_reference(Structure::List, SchemeKind::QSense, &steps);
    }

    #[test]
    fn list_matches_btreeset_under_hp(steps in prop::collection::vec(step_strategy(64), 1..400)) {
        check_against_reference(Structure::List, SchemeKind::Hp, &steps);
    }

    #[test]
    fn list_matches_btreeset_under_hazard_eras(steps in prop::collection::vec(step_strategy(64), 1..400)) {
        check_against_reference(Structure::List, SchemeKind::He, &steps);
    }

    #[test]
    fn skiplist_matches_btreeset_under_qsense(steps in prop::collection::vec(step_strategy(64), 1..300)) {
        check_against_reference(Structure::SkipList, SchemeKind::QSense, &steps);
    }

    #[test]
    fn skiplist_matches_btreeset_under_hazard_eras(steps in prop::collection::vec(step_strategy(64), 1..300)) {
        check_against_reference(Structure::SkipList, SchemeKind::He, &steps);
    }

    #[test]
    fn skiplist_matches_btreeset_under_cadence(steps in prop::collection::vec(step_strategy(64), 1..300)) {
        check_against_reference(Structure::SkipList, SchemeKind::Cadence, &steps);
    }

    #[test]
    fn bst_matches_btreeset_under_qsense(steps in prop::collection::vec(step_strategy(64), 1..300)) {
        check_against_reference(Structure::Bst, SchemeKind::QSense, &steps);
    }

    #[test]
    fn bst_matches_btreeset_under_qsbr(steps in prop::collection::vec(step_strategy(64), 1..300)) {
        check_against_reference(Structure::Bst, SchemeKind::Qsbr, &steps);
    }

    /// Deferred-reclamation aging is monotonic: once a node is old enough it stays
    /// old enough as time advances, and it is never old enough before `min_age` has
    /// elapsed (Cadence's safety hinges on this, paper Algorithm 3 lines 36-39).
    #[test]
    fn is_old_enough_is_monotonic(retired_at in 0u64..1_000_000, min_age in 0u64..1_000_000, dt1 in 0u64..1_000_000, dt2 in 0u64..1_000_000) {
        use reclaim_core::RetiredPtr;
        let raw = Box::into_raw(Box::new(0u64));
        // SAFETY: reconstructs the box from the pointer this test leaked via Box::into_raw; it is dropped exactly once.
        #[allow(clippy::disallowed_methods)] // sanctioned: drop_fn thunk: the retire contract pairs this with Box::into_raw
        unsafe fn drop_u64(p: *mut u8) { unsafe { drop(Box::from_raw(p.cast::<u64>())) } }
        // SAFETY: the pointer was just produced by Box::into_raw and matches the drop function's type.
        let node = unsafe { RetiredPtr::new(raw.cast(), drop_u64, retired_at) };
        let early = retired_at.saturating_add(dt1.min(dt2));
        let late = retired_at.saturating_add(dt1.max(dt2));
        if node.is_old_enough(early, min_age) {
            prop_assert!(node.is_old_enough(late, min_age), "aging must be monotonic");
        }
        if late < retired_at.saturating_add(min_age) {
            prop_assert!(!node.is_old_enough(late, min_age), "never old before min_age");
        }
        // SAFETY: the node was retired exactly once above and nothing protects it; reclaim drops it here.
        unsafe { node.reclaim() };
    }

    /// The epoch-to-limbo-bucket mapping cycles with period 3 (three logical epochs).
    #[test]
    fn limbo_buckets_cycle_mod_three(epoch in 0u64..1_000_000) {
        prop_assert_eq!(qsbr::limbo_index(epoch), qsbr::limbo_index(epoch + 3));
        prop_assert!(qsbr::limbo_index(epoch) < 3);
        let all_different = qsbr::limbo_index(epoch) != qsbr::limbo_index(epoch + 1)
            && qsbr::limbo_index(epoch + 1) != qsbr::limbo_index(epoch + 2)
            && qsbr::limbo_index(epoch) != qsbr::limbo_index(epoch + 2);
        prop_assert!(all_different, "three consecutive epochs use three distinct buckets");
    }
}
