//! Lease-pool stress: M=64 tasks over N=8 handles, with a stalled lessee.
//!
//! The M:N lease layer must keep its accounting straight under the exact
//! conditions it was built for: far more tasks than handles, continuous
//! checkout/checkin churn driving real retirements through a shared
//! structure, and one badly behaved task that sits on its lease while
//! everyone else keeps borrowing the remaining handles. After the storm:
//! every handle is back in the pool, every task got every turn it asked for,
//! and the scheme's conservation counters still hold (`retired >= freed`,
//! nothing double-freed — the stats layer's own invariant checks run
//! throughout).

use qsense_repro::ds::LockFreeSkipList;
use qsense_repro::smr::{Hazard, LeasePolicy, LeasePool, Smr, SmrConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TASKS: usize = 64;
const SLOTS: usize = 8;
const TURNS_PER_TASK: usize = 16;
const OPS_PER_TURN: u64 = 24;

#[test]
fn m64_tasks_over_n8_handles_with_a_stalled_lessee() {
    // A registry far larger than the pool: the sharded scan dispatch is what
    // keeps the unoccupied capacity free.
    let scheme = Hazard::new(
        SmrConfig::default()
            .with_max_threads(128)
            .with_hp_per_thread(qsense_repro::ds::SKIPLIST_HP_SLOTS)
            .with_scan_threshold(32)
            .with_rooster_threads(0),
    );
    let list = Arc::new(LockFreeSkipList::<u64, _>::new(Arc::clone(&scheme)));
    let pool = LeasePool::for_scheme(&scheme, SLOTS, LeasePolicy::Wait).expect("8 of 128 slots");
    let turns = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // The stalled lessee: checks a handle out and keeps it through most of
        // the storm — the other 63 tasks must make progress on 7 handles.
        scope.spawn(|| {
            let mut lease = pool.checkout().expect("wait policy never errors");
            for key in 0..OPS_PER_TURN {
                list.insert(key, &mut *lease);
            }
            std::thread::sleep(Duration::from_millis(100));
            for key in 0..OPS_PER_TURN {
                list.remove(&key, &mut *lease);
            }
            turns.fetch_add(1, Ordering::Relaxed);
        });
        for task in 1..TASKS {
            let list = Arc::clone(&list);
            let pool = &pool;
            let turns = &turns;
            scope.spawn(move || {
                for turn in 0..TURNS_PER_TASK {
                    let mut lease = pool.checkout().expect("wait policy never errors");
                    // Insert/remove churn in a task-private key band so every
                    // remove retires a node.
                    let base = 1_000 + (task as u64) * 100 + (turn as u64 % 2) * 50;
                    for key in base..base + OPS_PER_TURN {
                        list.insert(key, &mut *lease);
                    }
                    for key in base..base + OPS_PER_TURN {
                        list.remove(&key, &mut *lease);
                    }
                    turns.fetch_add(1, Ordering::Relaxed);
                    drop(lease);
                }
            });
        }
    });

    assert_eq!(
        turns.load(Ordering::Relaxed),
        ((TASKS - 1) * TURNS_PER_TASK) as u64 + 1,
        "every task completed every turn"
    );
    assert_eq!(
        pool.idle_count(),
        SLOTS,
        "every handle returned to the pool"
    );

    let stats = Smr::stats(&*scheme);
    assert!(
        stats.retired >= stats.freed,
        "conservation: retired ({}) >= freed ({})",
        stats.retired,
        stats.freed
    );
    // Every removal retires exactly one node; the inserts in the storm above
    // are sized so the removes all succeed.
    let expected_retires = ((TASKS - 1) * TURNS_PER_TASK) as u64 * OPS_PER_TURN + OPS_PER_TURN;
    assert_eq!(stats.retired, expected_retires, "no retire went missing");
    // With 9 claimed slots in a 128-slot (16-shard) registry, scans must have
    // skipped vacant shards throughout the storm.
    assert!(
        stats.shard_skips > 0,
        "scans dispatched on shards: {stats:?}"
    );

    // Drain: an idle pooled handle still owns its private limbo bag, so check
    // every handle out and flush it. Nothing is protected anymore, so the
    // leases leaked nothing.
    let mut leases: Vec<_> = (0..SLOTS)
        .map(|_| pool.try_checkout().expect("pool is whole again"))
        .collect();
    for lease in &mut leases {
        qsense_repro::smr::SmrHandle::flush(&mut **lease);
    }
    let stats = Smr::stats(&*scheme);
    assert_eq!(
        stats.freed, stats.retired,
        "an unobstructed flush reclaims everything the storm retired"
    );
}
