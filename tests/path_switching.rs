//! End-to-end QSense path switching through the public API: a real data structure,
//! real worker threads, a really stalled thread — the scenario of Figure 5 (bottom)
//! at test scale.

use qsense_repro::ds::HarrisMichaelList;
use qsense_repro::smr::{Path, QSense, Smr, SmrConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn config() -> SmrConfig {
    SmrConfig::for_list()
        .with_max_threads(6)
        .with_quiescence_threshold(8)
        .with_scan_threshold(32)
        .with_fallback_threshold(256)
        .with_rooster_threads(1)
        .with_rooster_interval(Duration::from_millis(1))
        .with_rooster_epsilon(Duration::from_millis(1))
}

#[test]
fn stalled_worker_forces_fallback_and_recovery_restores_fast_path() {
    let scheme = QSense::new(config());
    let list = Arc::new(HarrisMichaelList::new(Arc::clone(&scheme)));
    let stop = Arc::new(AtomicBool::new(false));
    let release_stalled = Arc::new(AtomicBool::new(false));

    thread::scope(|scope| {
        // The stalled worker: registers (so QSense counts it), does a little work,
        // then blocks until released — a prolonged process delay.
        {
            let list = Arc::clone(&list);
            let release = Arc::clone(&release_stalled);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut handle = list.register();
                for key in 0..50u64 {
                    list.insert(key, &mut handle);
                }
                while !release.load(Ordering::Relaxed) {
                    thread::sleep(Duration::from_millis(1));
                }
                // Back from the delay: keep operating so presence flags get set.
                while !stop.load(Ordering::Relaxed) {
                    for key in 0..20u64 {
                        list.contains(&key, &mut handle);
                    }
                }
            });
        }

        // Active workers that churn inserts/removes, forcing retirements that cannot
        // be reclaimed on the fast path while the stalled worker never quiesces.
        for t in 0..2u64 {
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut handle = list.register();
                let mut state = 77 + t;
                while !stop.load(Ordering::Relaxed) {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 400;
                    if state % 2 == 0 {
                        list.insert(key, &mut handle);
                    } else {
                        list.remove(&key, &mut handle);
                    }
                }
            });
        }

        // Phase 1: wait for QSense to notice the delay and switch to the fallback path.
        let deadline = Instant::now() + Duration::from_secs(20);
        while scheme.current_path() != Path::Fallback {
            assert!(
                Instant::now() < deadline,
                "QSense never switched to the fallback path despite a stalled worker"
            );
            thread::sleep(Duration::from_millis(5));
        }
        assert!(scheme.stats().fallback_switches >= 1);

        // While on the fallback path, reclamation must still make progress.
        let before = scheme.stats().freed;
        thread::sleep(Duration::from_millis(100));
        let after = scheme.stats().freed;
        assert!(
            after > before,
            "fallback path must keep reclaiming while a worker is stalled ({before} -> {after})"
        );

        // Phase 2: release the stalled worker; QSense must switch back to the fast path.
        release_stalled.store(true, Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_secs(20);
        while scheme.current_path() != Path::Fast {
            assert!(
                Instant::now() < deadline,
                "QSense never returned to the fast path after every worker became active"
            );
            thread::sleep(Duration::from_millis(5));
        }
        assert!(scheme.stats().fast_path_switches >= 1);

        stop.store(true, Ordering::Relaxed);
    });

    // Shut everything down and verify accounting is consistent.
    drop(list);
    let stats = scheme.stats();
    assert!(stats.freed <= stats.retired);
    drop(scheme);
}

#[test]
fn qsbr_alone_cannot_reclaim_under_the_same_stall() {
    // The control experiment: plain QSBR with a stalled thread reclaims (almost)
    // nothing, which is exactly why QSense exists.
    use qsense_repro::smr::Qsbr;
    let scheme = Qsbr::new(config());
    let list = Arc::new(HarrisMichaelList::new(Arc::clone(&scheme)));
    let _stalled_handle = list.register(); // registered, never quiesces again

    let mut worker = list.register();
    for key in 0..400u64 {
        list.insert(key, &mut worker);
    }
    for key in 0..400u64 {
        list.remove(&key, &mut worker);
    }
    let stats = scheme.stats();
    assert_eq!(stats.retired, 400);
    assert!(
        stats.freed <= 2,
        "QSBR must be unable to reclaim while a registered thread never quiesces (freed {})",
        stats.freed
    );
}
