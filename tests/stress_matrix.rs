//! Cross-crate stress tests: every data structure under every reclamation scheme,
//! hammered by several threads at once.
//!
//! These are the tests that would crash (use-after-free, double free) or deadlock if
//! the protection / retirement protocol of any (structure, scheme) pair were wrong,
//! and that would fail the final consistency check if operations were lost.

use qsense_repro::bench::{make_set, BenchSet, SchemeKind, Structure};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread;

fn bench_config(threads: usize) -> reclaim_core::SmrConfig {
    // Small thresholds so reclamation and (for QSense) path switching actually
    // happen within a short test run.
    qsense_repro::bench::default_bench_config(threads + 2)
        .with_quiescence_threshold(16)
        .with_scan_threshold(32)
        .with_fallback_threshold(512)
        .with_rooster_interval(std::time::Duration::from_millis(1))
}

/// Runs a mixed workload and checks that the final size matches the balance of
/// successful inserts and removes reported by the threads themselves.
fn stress_cell(structure: Structure, scheme: SchemeKind, threads: usize, ops: u64) {
    let set: Arc<dyn BenchSet> = make_set(structure, scheme, bench_config(threads));
    let balance = Arc::new(AtomicI64::new(0));

    thread::scope(|scope| {
        for t in 0..threads {
            let set = Arc::clone(&set);
            let balance = Arc::clone(&balance);
            scope.spawn(move || {
                let mut session = set.session();
                let mut state = 0x5bd1_e995_u64.wrapping_add(t as u64);
                let mut local: i64 = 0;
                for _ in 0..ops {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 512;
                    match state % 4 {
                        0 | 1 => {
                            session.contains(key);
                        }
                        2 => {
                            if session.insert(key) {
                                local += 1;
                            }
                        }
                        _ => {
                            if session.remove(key) {
                                local -= 1;
                            }
                        }
                    }
                }
                session.flush();
                balance.fetch_add(local, Ordering::SeqCst);
            });
        }
    });

    let expected = balance.load(Ordering::SeqCst);
    assert!(
        expected >= 0,
        "more successful removes than inserts is impossible"
    );
    assert_eq!(
        set.len() as i64,
        expected,
        "{structure:?}/{scheme:?}: final size must equal successful inserts - removes"
    );
    let stats = set.smr_stats();
    assert!(
        stats.freed <= stats.retired,
        "cannot free more than was retired"
    );
}

/// 100%-churn workload for the FIFO/LIFO structures: every operation mutates
/// (enqueue/push or dequeue/pop — there is no membership test), which is the
/// natural workload for the queue and the stack and the hardest on reclamation:
/// every successful remove retires a node.
fn churn_cell(structure: Structure, scheme: SchemeKind, threads: usize, ops: u64) {
    let set: Arc<dyn BenchSet> = make_set(structure, scheme, bench_config(threads));
    let balance = Arc::new(AtomicI64::new(0));

    thread::scope(|scope| {
        for t in 0..threads {
            let set = Arc::clone(&set);
            let balance = Arc::clone(&balance);
            scope.spawn(move || {
                let mut session = set.session();
                let mut state = 0x9e37_79b9_u64.wrapping_add(t as u64);
                let mut local: i64 = 0;
                for _ in 0..ops {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let value = (state >> 33) % 512;
                    if state.is_multiple_of(2) {
                        if session.insert(value) {
                            local += 1;
                        }
                    } else if session.remove(value) {
                        local -= 1;
                    }
                }
                session.flush();
                balance.fetch_add(local, Ordering::SeqCst);
            });
        }
    });

    let expected = balance.load(Ordering::SeqCst);
    assert!(
        expected >= 0,
        "more successful pops than pushes is impossible"
    );
    assert_eq!(
        set.len() as i64,
        expected,
        "{structure:?}/{scheme:?}: final length must equal pushes - pops"
    );
    let stats = set.smr_stats();
    assert!(
        stats.freed <= stats.retired,
        "cannot free more than was retired"
    );
}

const OPS: u64 = 8_000;
const THREADS: usize = 4;

macro_rules! stress_test {
    ($name:ident, $structure:expr, $scheme:expr) => {
        #[test]
        fn $name() {
            stress_cell($structure, $scheme, THREADS, OPS);
        }
    };
}

macro_rules! churn_test {
    ($name:ident, $structure:expr, $scheme:expr) => {
        #[test]
        fn $name() {
            churn_cell($structure, $scheme, THREADS, OPS);
        }
    };
}

stress_test!(list_none, Structure::List, SchemeKind::None);
stress_test!(list_qsbr, Structure::List, SchemeKind::Qsbr);
stress_test!(list_hp, Structure::List, SchemeKind::Hp);
stress_test!(list_cadence, Structure::List, SchemeKind::Cadence);
stress_test!(list_qsense, Structure::List, SchemeKind::QSense);
stress_test!(list_he, Structure::List, SchemeKind::He);

stress_test!(skiplist_none, Structure::SkipList, SchemeKind::None);
stress_test!(skiplist_qsbr, Structure::SkipList, SchemeKind::Qsbr);
stress_test!(skiplist_hp, Structure::SkipList, SchemeKind::Hp);
stress_test!(skiplist_cadence, Structure::SkipList, SchemeKind::Cadence);
stress_test!(skiplist_qsense, Structure::SkipList, SchemeKind::QSense);
stress_test!(skiplist_he, Structure::SkipList, SchemeKind::He);

stress_test!(bst_none, Structure::Bst, SchemeKind::None);
stress_test!(bst_qsbr, Structure::Bst, SchemeKind::Qsbr);
stress_test!(bst_hp, Structure::Bst, SchemeKind::Hp);
stress_test!(bst_cadence, Structure::Bst, SchemeKind::Cadence);
stress_test!(bst_qsense, Structure::Bst, SchemeKind::QSense);
stress_test!(bst_he, Structure::Bst, SchemeKind::He);

churn_test!(queue_none, Structure::Queue, SchemeKind::None);
churn_test!(queue_qsbr, Structure::Queue, SchemeKind::Qsbr);
churn_test!(queue_hp, Structure::Queue, SchemeKind::Hp);
churn_test!(queue_cadence, Structure::Queue, SchemeKind::Cadence);
churn_test!(queue_qsense, Structure::Queue, SchemeKind::QSense);
churn_test!(queue_he, Structure::Queue, SchemeKind::He);

churn_test!(stack_none, Structure::Stack, SchemeKind::None);
churn_test!(stack_qsbr, Structure::Stack, SchemeKind::Qsbr);
churn_test!(stack_hp, Structure::Stack, SchemeKind::Hp);
churn_test!(stack_cadence, Structure::Stack, SchemeKind::Cadence);
churn_test!(stack_qsense, Structure::Stack, SchemeKind::QSense);
churn_test!(stack_he, Structure::Stack, SchemeKind::He);

/// A heavier run on the combination the paper features most prominently.
#[test]
fn list_qsense_heavier_stress() {
    stress_cell(Structure::List, SchemeKind::QSense, 6, 20_000);
}

/// High-contention same-key insert/remove storm over the skip list: every
/// thread hammers the *same* key, so remove's sweep + upper-level fence pass
/// and insert's validate-on-link CAS collide constantly — the workload whose
/// interleavings brush the (closed) upper-level re-link window hardest, with
/// equal-key nodes transiently coexisting at upper levels.
///
/// Reclamation accounting must stay exact through the storm:
/// * **no double retire** — every successful remove retires its victim exactly
///   once, so the schemes' retired counter equals the thread-reported number of
///   successful removes plus the final flush (nothing else retires);
/// * **retired ≥ freed** — nothing is freed that was not first retired.
fn skiplist_same_key_storm(scheme: SchemeKind) {
    const THREADS: usize = 6;
    const OPS: u64 = 12_000;
    let set: Arc<dyn BenchSet> = make_set(Structure::SkipList, scheme, bench_config(THREADS));
    let balance = Arc::new(AtomicI64::new(0));
    let removes = Arc::new(AtomicI64::new(0));

    thread::scope(|scope| {
        for t in 0..THREADS {
            let set = Arc::clone(&set);
            let balance = Arc::clone(&balance);
            let removes = Arc::clone(&removes);
            scope.spawn(move || {
                let mut session = set.session();
                let mut state = 0x94d0_49bb_u64.wrapping_add(t as u64);
                let mut local: i64 = 0;
                let mut local_removes: i64 = 0;
                for _ in 0..OPS {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    // One single key: maximal same-key contention.
                    if state.is_multiple_of(2) {
                        if session.insert(7) {
                            local += 1;
                        }
                    } else if session.remove(7) {
                        local -= 1;
                        local_removes += 1;
                    }
                }
                session.flush();
                balance.fetch_add(local, Ordering::SeqCst);
                removes.fetch_add(local_removes, Ordering::SeqCst);
            });
        }
    });

    let expected = balance.load(Ordering::SeqCst);
    assert!(
        (0..=1).contains(&expected),
        "one key: net balance is 0 or 1"
    );
    assert_eq!(
        set.len() as i64,
        expected,
        "{scheme:?}: final size must equal successful inserts - removes"
    );
    let stats = set.smr_stats();
    assert!(
        stats.freed <= stats.retired,
        "{scheme:?}: cannot free more than was retired"
    );
    assert_eq!(
        stats.retired as i64,
        removes.load(Ordering::SeqCst),
        "{scheme:?}: exactly one retire per successful remove (no double retire, \
         no lost retire)"
    );
}

#[test]
fn skiplist_same_key_storm_hp() {
    skiplist_same_key_storm(SchemeKind::Hp);
}

#[test]
fn skiplist_same_key_storm_cadence() {
    skiplist_same_key_storm(SchemeKind::Cadence);
}

#[test]
fn skiplist_same_key_storm_qsense() {
    skiplist_same_key_storm(SchemeKind::QSense);
}

#[test]
fn skiplist_same_key_storm_he() {
    skiplist_same_key_storm(SchemeKind::He);
}

/// Disjoint key partitions: with no key contention, every insert and remove must
/// succeed, so the final contents are exactly predictable.
#[test]
fn partitioned_keys_are_never_lost() {
    for structure in [Structure::List, Structure::SkipList, Structure::Bst] {
        let set = make_set(structure, SchemeKind::QSense, bench_config(4));
        thread::scope(|scope| {
            for t in 0..4u64 {
                let set = Arc::clone(&set);
                scope.spawn(move || {
                    let mut session = set.session();
                    let base = t * 1_000;
                    for key in base..base + 500 {
                        assert!(
                            session.insert(key),
                            "{structure:?}: insert {key} must succeed"
                        );
                    }
                    for key in (base..base + 500).step_by(2) {
                        assert!(
                            session.remove(key),
                            "{structure:?}: remove {key} must succeed"
                        );
                    }
                });
            }
        });
        assert_eq!(set.len(), 4 * 250, "{structure:?}");
    }
}
