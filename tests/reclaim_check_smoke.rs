//! Tier-1 smoke test for the `reclaim-check` harness: the full suite matrix
//! (5 structures × 8 schemes) exists, and a representative cell from each end
//! of the cost spectrum explores exhaustively clean at the default preemption
//! bound. The complete matrix — plus the oracle-backed verdict tests — runs in
//! the dedicated CI `check` job (`cargo test -p reclaim-check
//! --features check-oracle`); this test only pins that the harness builds and
//! drives real structures from the workspace root.

use reclaim_check::{suites, Explorer};

#[test]
fn suite_matrix_covers_every_structure_and_scheme() {
    let all = suites::all_scenarios();
    assert_eq!(all.len(), 5 * 8, "5 structures x 8 schemes");
    for structure in ["list", "skiplist", "bst", "queue", "stack"] {
        assert_eq!(suites::scenarios_for(structure).len(), 8, "{structure}");
    }
}

#[test]
fn representative_cells_explore_clean() {
    let explorer = Explorer::new();
    for scenario in suites::scenarios_for("stack")
        .iter()
        .chain(suites::scenarios_for("list").iter().take(1))
    {
        let report = explorer.explore(scenario);
        report.assert_exhaustive();
        assert!(
            report.schedules > 1,
            "{} explored {}",
            scenario.name(),
            report.schedules
        );
    }
}
