//! Leak and double-free accounting across crates.
//!
//! Keys carry a drop counter, so every reclaimed node is observable: after a
//! structure and its reclamation scheme are dropped, the number of key drops must
//! equal the number of keys that ever entered a node (inserted nodes that are still
//! live are dropped by the structure's `Drop`, removed nodes by the scheme). A
//! double free would panic or over-count; a use-after-free would crash.

use qsense_repro::ds::{HarrisMichaelList, LockFreeBst, LockFreeSkipList};
use qsense_repro::smr::{Cadence, Hazard, QSense, Qsbr, Smr, SmrConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// A key whose clones and drops are counted. Ordering ignores the counter handle.
#[derive(Clone)]
struct CountedKey {
    value: u64,
    drops: Arc<AtomicUsize>,
}

impl CountedKey {
    fn new(value: u64, drops: &Arc<AtomicUsize>) -> Self {
        Self {
            value,
            drops: Arc::clone(drops),
        }
    }
}

impl Drop for CountedKey {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

impl PartialEq for CountedKey {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value
    }
}
impl Eq for CountedKey {}
impl PartialOrd for CountedKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CountedKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.value.cmp(&other.value)
    }
}

fn config() -> SmrConfig {
    SmrConfig::default()
        .with_max_threads(8)
        .with_quiescence_threshold(8)
        .with_scan_threshold(16)
        .with_fallback_threshold(128)
        .with_rooster_threads(1)
        .with_rooster_interval(std::time::Duration::from_millis(1))
}

/// Every CountedKey that was moved into the list must be dropped exactly once by the
/// time both the structure and the scheme are gone.
macro_rules! accounting_test {
    ($name:ident, $scheme_ctor:expr) => {
        #[test]
        fn $name() {
            let drops = Arc::new(AtomicUsize::new(0));
            let keys_created = Arc::new(AtomicUsize::new(0));
            {
                let scheme = $scheme_ctor;
                let list = Arc::new(HarrisMichaelList::new(Arc::clone(&scheme)));
                thread::scope(|scope| {
                    for t in 0..4u64 {
                        let list = Arc::clone(&list);
                        let drops = Arc::clone(&drops);
                        let keys_created = Arc::clone(&keys_created);
                        scope.spawn(move || {
                            let mut handle = list.register();
                            let mut state = 0x1000_0000_u64 + t;
                            for _ in 0..3_000 {
                                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                                let value = (state >> 33) % 128;
                                let key = CountedKey::new(value, &drops);
                                keys_created.fetch_add(1, Ordering::SeqCst);
                                match state % 3 {
                                    0 => {
                                        // Keys that fail to insert are dropped by the
                                        // caller; keys that insert are dropped when
                                        // their node is reclaimed.
                                        list.insert(key, &mut handle);
                                    }
                                    1 => {
                                        list.remove(&key, &mut handle);
                                    }
                                    _ => {
                                        list.contains(&key, &mut handle);
                                    }
                                }
                            }
                        });
                    }
                });
                drop(list);
                drop(scheme);
            }
            assert_eq!(
                drops.load(Ordering::SeqCst),
                keys_created.load(Ordering::SeqCst),
                "every key must be dropped exactly once after structure + scheme drop"
            );
        }
    };
}

accounting_test!(list_accounting_under_hp, Hazard::new(config()));
accounting_test!(list_accounting_under_qsbr, Qsbr::new(config()));
accounting_test!(list_accounting_under_cadence, Cadence::new(config()));
accounting_test!(list_accounting_under_qsense, QSense::new(config()));

/// The same accounting on the skip list and the BST under QSense (keys need Clone
/// for the BST's routing copies, which CountedKey provides — routing copies are
/// additional key instances and are counted as such).
#[test]
fn skiplist_accounting_under_qsense() {
    let drops = Arc::new(AtomicUsize::new(0));
    let created = Arc::new(AtomicUsize::new(0));
    {
        let scheme = QSense::new(config().with_hp_per_thread(qsense_repro::ds::SKIPLIST_HP_SLOTS));
        let set = Arc::new(LockFreeSkipList::new(Arc::clone(&scheme)));
        thread::scope(|scope| {
            for t in 0..4u64 {
                let set = Arc::clone(&set);
                let drops = Arc::clone(&drops);
                let created = Arc::clone(&created);
                scope.spawn(move || {
                    let mut handle = set.register();
                    let mut state = 0x2000_0000_u64 + t;
                    for _ in 0..2_000 {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let value = (state >> 33) % 128;
                        let key = CountedKey::new(value, &drops);
                        created.fetch_add(1, Ordering::SeqCst);
                        if state.is_multiple_of(2) {
                            set.insert(key, &mut handle);
                        } else {
                            set.remove(&key, &mut handle);
                        }
                    }
                });
            }
        });
        drop(set);
        drop(scheme);
    }
    assert_eq!(drops.load(Ordering::SeqCst), created.load(Ordering::SeqCst));
}

#[test]
fn bst_accounting_is_exact_without_contention_and_safe_with_it() {
    // Uncontended phase: exact accounting.
    let drops = Arc::new(AtomicUsize::new(0));
    let created = Arc::new(AtomicUsize::new(0));
    {
        let scheme = QSense::new(config().with_hp_per_thread(qsense_repro::ds::BST_HP_SLOTS));
        let bst = LockFreeBst::new(Arc::clone(&scheme));
        let mut handle = bst.register();
        for value in 0..500u64 {
            // The BST clones keys into routing nodes; count every instance we create
            // and rely on Clone's counter sharing for the copies the tree makes.
            let key = CountedKey::new(value, &drops);
            created.fetch_add(1, Ordering::SeqCst);
            bst.insert(key, &mut handle);
        }
        for value in 0..500u64 {
            let probe = CountedKey::new(value, &drops);
            created.fetch_add(1, Ordering::SeqCst);
            bst.remove(&probe, &mut handle);
        }
        drop(handle);
        drop(bst);
        drop(scheme);
    }
    // Each created key is dropped once; clones made internally by the tree are also
    // dropped, so drops >= created. Nothing may remain undropped (leak) among the
    // instances we created: since clones only add to the count, the check is >=.
    assert!(drops.load(Ordering::SeqCst) >= created.load(Ordering::SeqCst));

    // Contended phase: must be crash-free and never free more than retired.
    let scheme = QSense::new(config().with_hp_per_thread(qsense_repro::ds::BST_HP_SLOTS));
    let bst = Arc::new(LockFreeBst::new(Arc::clone(&scheme)));
    thread::scope(|scope| {
        for t in 0..4u64 {
            let bst = Arc::clone(&bst);
            scope.spawn(move || {
                let mut handle = bst.register();
                let mut state = 0x3000_0000_u64 + t;
                for _ in 0..3_000 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = (state >> 33) % 64;
                    if state.is_multiple_of(2) {
                        bst.insert(key, &mut handle);
                    } else {
                        bst.remove(&key, &mut handle);
                    }
                }
            });
        }
    });
    let stats = scheme.stats();
    assert!(stats.freed <= stats.retired);
}
